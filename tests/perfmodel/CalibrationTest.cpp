//===-- tests/perfmodel/CalibrationTest.cpp - Measured machine profiles ---===//
//
// Part of the hichi-boris-dpcpp-repro project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `hichi-machine-v1` contract: profile JSON round-trips every field
/// bit-identically (the %.17g promise), tier lookup picks the right
/// working-set point, CpuMachine::fromProfile maps the measured figures
/// onto the roofline descriptor, and a bounded real measurement produces
/// a sane profile.
///
//===----------------------------------------------------------------------===//

#include "perfmodel/Calibration.h"
#include "perfmodel/RooflineModel.h"
#include "perfmodel/WorkloadModel.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

using namespace hichi;
using namespace hichi::perfmodel;

namespace {

/// A synthetic two-socket-looking profile with deliberately awkward
/// doubles (non-terminating binary fractions, accumulated rounding) —
/// exactly the values a lossy writer would corrupt.
MachineProfile syntheticProfile() {
  MachineProfile P;
  P.Host = "synthetic-host";
  P.Threads = 8;
  P.NumaDomains = 2;
  P.FmaFlopsPerCore = 1.0e9 / 3.0;
  P.FmaFlopsSaturated = (0.1 + 0.2) * 1e10;
  P.Tiers = {
      {16.0 * 1024, 200.0e9 / 3.0, 61.3e9, 1000.0e9 / 7.0, 135.0e9},
      {4.0 * 1024 * 1024, 30.000000000000004e9, 28.1e9, 90.1e9, 85.3e9},
      {64.0 * 1024 * 1024, 12.0e9, 11.0e9, 40.0e9, 38.5e9},
  };
  P.Submit = {{"serial", 120.5, 300.25}, {"openmp", 1.0 / 3.0 * 1e4, 4000.0}};
  return P;
}

TEST(CalibrationTest, JsonRoundTripIsBitIdentical) {
  const MachineProfile P = syntheticProfile();
  const std::string Doc = Calibration::toJson(P);

  json::Value Parsed;
  std::string Error;
  ASSERT_TRUE(json::parse(Doc, Parsed, &Error)) << Error;
  EXPECT_EQ(Parsed.stringOr("schema", ""), "hichi-machine-v1");

  MachineProfile Back;
  ASSERT_TRUE(Calibration::fromJson(Parsed, Back, &Error)) << Error;
  EXPECT_TRUE(Back == P); // operator== compares every double exactly
}

TEST(CalibrationTest, SaveLoadRoundTripsThroughAFile) {
  const MachineProfile P = syntheticProfile();
  const std::string Path = ::testing::TempDir() + "hichi_profile_test.json";
  std::string Error;
  ASSERT_TRUE(Calibration::save(P, Path, &Error)) << Error;

  MachineProfile Back;
  ASSERT_TRUE(Calibration::load(Path, Back, &Error)) << Error;
  EXPECT_TRUE(Back == P);
  std::remove(Path.c_str());
}

TEST(CalibrationTest, FromJsonRejectsWrongSchema) {
  json::Value Doc;
  std::string Error;
  ASSERT_TRUE(json::parse(R"({"schema": "hichi-bench-v1"})", Doc, &Error));
  MachineProfile Out;
  EXPECT_FALSE(Calibration::fromJson(Doc, Out, &Error));
}

TEST(CalibrationTest, TierLookupPicksFirstLargeEnoughTier) {
  const MachineProfile P = syntheticProfile();
  // Below / at the smallest tier: the L1-ish point.
  EXPECT_DOUBLE_EQ(P.perCoreBandwidthAt(1024), P.Tiers[0].PerCoreBandwidth);
  EXPECT_DOUBLE_EQ(P.perCoreBandwidthAt(16.0 * 1024),
                   P.Tiers[0].PerCoreBandwidth);
  // Between tiers: the first tier that fits the working set.
  EXPECT_DOUBLE_EQ(P.perCoreBandwidthAt(1.0 * 1024 * 1024),
                   P.Tiers[1].PerCoreBandwidth);
  // Beyond the last tier: DRAM figures.
  EXPECT_DOUBLE_EQ(P.perCoreBandwidthAt(1e12), P.Tiers[2].PerCoreBandwidth);
  EXPECT_DOUBLE_EQ(P.dramPerCoreBandwidth(), P.Tiers[2].PerCoreBandwidth);
  EXPECT_DOUBLE_EQ(P.dramSaturatedBandwidth(),
                   P.Tiers[2].SaturatedBandwidth);
  // Empty profile: all lookups are 0.
  MachineProfile Empty;
  EXPECT_DOUBLE_EQ(Empty.perCoreBandwidthAt(1024), 0.0);
  EXPECT_DOUBLE_EQ(Empty.dramSaturatedBandwidth(), 0.0);
}

TEST(CalibrationTest, BandwidthTiersDescendTowardDram) {
  // The cache hierarchy's defining monotonicity, pinned on the synthetic
  // profile the other tests use: per-core bandwidth must not increase
  // with working-set size.
  const MachineProfile P = syntheticProfile();
  for (std::size_t I = 1; I < P.Tiers.size(); ++I) {
    EXPECT_LE(P.Tiers[I].PerCoreBandwidth, P.Tiers[I - 1].PerCoreBandwidth);
    EXPECT_LE(P.Tiers[I].SaturatedBandwidth,
              P.Tiers[I - 1].SaturatedBandwidth);
  }
}

TEST(CalibrationTest, SubmitOverheadLookup) {
  const MachineProfile P = syntheticProfile();
  EXPECT_DOUBLE_EQ(P.submitOverheadNs("serial", -1.0), 120.5);
  EXPECT_DOUBLE_EQ(P.submitOverheadNs("openmp", -1.0), 1.0 / 3.0 * 1e4);
  EXPECT_DOUBLE_EQ(P.submitOverheadNs("unmeasured", 42.0), 42.0);
}

TEST(CalibrationTest, FromProfileMapsOntoTheRooflineMachine) {
  const MachineProfile P = syntheticProfile();
  const CpuMachine M = CpuMachine::fromProfile(P);

  EXPECT_EQ(M.Sockets, P.NumaDomains);
  EXPECT_EQ(M.coreCount(), P.Threads);
  // The compute product encodes the measured FMA rate: peak double
  // flops of the whole node = FmaFlopsPerCore x cores, so single
  // (twice the lanes) is twice that.
  EXPECT_NEAR(M.peakFlopsSingle(), 2.0 * P.FmaFlopsPerCore * P.Threads,
              1e-3 * M.peakFlopsSingle());
  // The DRAM tier splits across sockets; per-core is the measured
  // single-core DRAM stream.
  EXPECT_NEAR(M.LocalBandwidthPerSocket * M.Sockets,
              P.dramSaturatedBandwidth(), 1.0);
  EXPECT_DOUBLE_EQ(M.PerCoreBandwidth, P.dramPerCoreBandwidth());
}

TEST(CalibrationTest, StagePredictionsScaleUntilBandwidthSaturates) {
  const CpuMachine M = CpuMachine::fromProfile(syntheticProfile());
  const StageWorkload W = pushStageWorkload(Precision::Double);

  const StagePrediction One = predictStageNs(M, W, 1);
  const StagePrediction Four = predictStageNs(M, W, 4);
  const StagePrediction All = predictStageNs(M, W, M.coreCount());
  // More threads never predict slower...
  EXPECT_LE(Four.NsPerItem, One.NsPerItem);
  EXPECT_LE(All.NsPerItem, Four.NsPerItem);
  // ...and the memory leg is capped by the socket ceiling: 4 cores of
  // 12 GB/s would be 48 GB/s, but the synthetic socket delivers 20.
  const double SocketBw = M.LocalBandwidthPerSocket;
  const double FourCoreBw = 4.0 * M.PerCoreBandwidth;
  if (FourCoreBw > SocketBw)
    EXPECT_GT(Four.MemoryNs, One.MemoryNs / 4.0);
}

TEST(CalibrationTest, BoundedMeasurementProducesASaneProfile) {
  // An ultra-small real measurement: sanity of the machinery, not of
  // the numbers (CI hosts are noisy; the profile only has to be
  // positive and well-formed).
  CalibrationConfig Config;
  Config.Threads = 1;
  Config.Repeats = 1;
  Config.BytesPerRepeat = 256.0 * 1024;
  Config.FmaIterations = 10 * 1000;
  Config.WorkingSets = {64.0 * 1024};
  const MachineProfile P = Calibration::measure(Config);

  EXPECT_FALSE(P.Host.empty());
  EXPECT_EQ(P.Threads, 1);
  EXPECT_GE(P.NumaDomains, 1);
  EXPECT_GT(P.FmaFlopsPerCore, 0.0);
  EXPECT_GT(P.FmaFlopsSaturated, 0.0);
  ASSERT_EQ(P.Tiers.size(), 1u);
  EXPECT_DOUBLE_EQ(P.Tiers[0].WorkingSetBytes, 64.0 * 1024);
  EXPECT_GT(P.Tiers[0].PerCoreBandwidth, 0.0);
  EXPECT_GT(P.Tiers[0].SaturatedBandwidth, 0.0);
  // The slow-tail (p95-of-time) bandwidth can never beat the median.
  EXPECT_LE(P.Tiers[0].PerCoreP95Bandwidth,
            P.Tiers[0].PerCoreBandwidth + 1e-9);
  EXPECT_TRUE(P.Submit.empty()); // measure() leaves submit to the bench

  // And the measured profile round-trips like the synthetic one.
  json::Value Doc;
  std::string Error;
  ASSERT_TRUE(json::parse(Calibration::toJson(P), Doc, &Error)) << Error;
  MachineProfile Back;
  ASSERT_TRUE(Calibration::fromJson(Doc, Back, &Error)) << Error;
  EXPECT_TRUE(Back == P);
}

} // namespace
