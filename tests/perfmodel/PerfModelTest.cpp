//===-- tests/perfmodel/PerfModelTest.cpp - Model vs paper tables --------===//
//
// Part of the hichi-boris-dpcpp-repro project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the performance model against the published numbers: Table 2
/// (CPU NSPS), Table 3 (GPU NSPS) and the qualitative findings of
/// Section 5.3 / Fig. 1. These are the "does the reproduction have the
/// paper's shape" checks; EXPERIMENTS.md records the full comparison.
///
//===----------------------------------------------------------------------===//

#include "gpusim/GpuDeviceModel.h"
#include "perfmodel/RooflineModel.h"

#include <gtest/gtest.h>

using namespace hichi;
using namespace hichi::perfmodel;

namespace {

const CpuMachine Node = CpuMachine::xeon8260LNode();

/// One cell of the paper's Table 2.
struct Table2Cell {
  Layout L;
  Parallelization Par;
  Scenario S;
  Precision P;
  double PaperNsps;
};

const Table2Cell Table2[] = {
    // AoS
    {Layout::AoS, Parallelization::OpenMP, Scenario::PrecalculatedFields, Precision::Single, 0.53},
    {Layout::AoS, Parallelization::OpenMP, Scenario::PrecalculatedFields, Precision::Double, 0.98},
    {Layout::AoS, Parallelization::OpenMP, Scenario::AnalyticalFields, Precision::Single, 0.58},
    {Layout::AoS, Parallelization::OpenMP, Scenario::AnalyticalFields, Precision::Double, 0.84},
    {Layout::AoS, Parallelization::Dpcpp, Scenario::PrecalculatedFields, Precision::Single, 0.78},
    {Layout::AoS, Parallelization::Dpcpp, Scenario::PrecalculatedFields, Precision::Double, 1.54},
    {Layout::AoS, Parallelization::Dpcpp, Scenario::AnalyticalFields, Precision::Single, 1.02},
    {Layout::AoS, Parallelization::Dpcpp, Scenario::AnalyticalFields, Precision::Double, 1.48},
    {Layout::AoS, Parallelization::DpcppNuma, Scenario::PrecalculatedFields, Precision::Single, 0.54},
    {Layout::AoS, Parallelization::DpcppNuma, Scenario::PrecalculatedFields, Precision::Double, 0.99},
    {Layout::AoS, Parallelization::DpcppNuma, Scenario::AnalyticalFields, Precision::Single, 0.54},
    {Layout::AoS, Parallelization::DpcppNuma, Scenario::AnalyticalFields, Precision::Double, 0.89},
    // SoA
    {Layout::SoA, Parallelization::OpenMP, Scenario::PrecalculatedFields, Precision::Single, 0.50},
    {Layout::SoA, Parallelization::OpenMP, Scenario::PrecalculatedFields, Precision::Double, 1.06},
    {Layout::SoA, Parallelization::OpenMP, Scenario::AnalyticalFields, Precision::Single, 0.43},
    {Layout::SoA, Parallelization::OpenMP, Scenario::AnalyticalFields, Precision::Double, 0.76},
    {Layout::SoA, Parallelization::Dpcpp, Scenario::PrecalculatedFields, Precision::Single, 0.85},
    {Layout::SoA, Parallelization::Dpcpp, Scenario::PrecalculatedFields, Precision::Double, 1.49},
    {Layout::SoA, Parallelization::Dpcpp, Scenario::AnalyticalFields, Precision::Single, 0.77},
    {Layout::SoA, Parallelization::Dpcpp, Scenario::AnalyticalFields, Precision::Double, 1.31},
    {Layout::SoA, Parallelization::DpcppNuma, Scenario::PrecalculatedFields, Precision::Single, 0.58},
    {Layout::SoA, Parallelization::DpcppNuma, Scenario::PrecalculatedFields, Precision::Double, 1.20},
    {Layout::SoA, Parallelization::DpcppNuma, Scenario::AnalyticalFields, Precision::Single, 0.60},
    {Layout::SoA, Parallelization::DpcppNuma, Scenario::AnalyticalFields, Precision::Double, 0.90},
};

//===----------------------------------------------------------------------===//
// Workload accounting
//===----------------------------------------------------------------------===//

TEST(WorkloadModelTest, ParticleBytesMatchPaperSection3) {
  EXPECT_DOUBLE_EQ(particleStoredBytes(Precision::Single), 36.0);
  EXPECT_DOUBLE_EQ(particleStoredBytes(Precision::Double), 72.0);
}

TEST(WorkloadModelTest, PrecalculatedAddsFieldTraffic) {
  for (Layout L : {Layout::AoS, Layout::SoA})
    for (Precision P : {Precision::Single, Precision::Double}) {
      auto Pre = trafficPerParticleStep(Scenario::PrecalculatedFields, L, P);
      auto Ana = trafficPerParticleStep(Scenario::AnalyticalFields, L, P);
      double FieldBytes = 6.0 * (P == Precision::Single ? 4.0 : 8.0);
      EXPECT_DOUBLE_EQ(Pre.ReadBytes - Ana.ReadBytes, FieldBytes);
      EXPECT_DOUBLE_EQ(Pre.WriteBytes, Ana.WriteBytes);
    }
}

TEST(WorkloadModelTest, DoubleTrafficIsTwiceSingleForAoS) {
  auto S = trafficPerParticleStep(Scenario::PrecalculatedFields, Layout::AoS,
                                  Precision::Single);
  auto D = trafficPerParticleStep(Scenario::PrecalculatedFields, Layout::AoS,
                                  Precision::Double);
  EXPECT_DOUBLE_EQ(D.total(), 2.0 * S.total());
}

TEST(WorkloadModelTest, AnalyticalCostsMoreFlops) {
  for (Precision P : {Precision::Single, Precision::Double})
    EXPECT_GT(flopsPerParticleStep(Scenario::AnalyticalFields, P),
              2.0 * flopsPerParticleStep(Scenario::PrecalculatedFields, P))
        << "the dipole evaluation must dominate the Boris kernel";
}

TEST(WorkloadModelTest, SoAVectorizesBetterThanAoS) {
  for (Scenario S : {Scenario::PrecalculatedFields, Scenario::AnalyticalFields})
    for (Precision P : {Precision::Single, Precision::Double})
      EXPECT_GT(vectorEfficiency(S, Layout::SoA, P),
                vectorEfficiency(S, Layout::AoS, P));
}

TEST(WorkloadModelTest, GpuProfileSplitsStridedForAoS) {
  auto AoS = gpuKernelProfile(Scenario::PrecalculatedFields, Layout::AoS,
                              Precision::Single);
  auto SoA = gpuKernelProfile(Scenario::PrecalculatedFields, Layout::SoA,
                              Precision::Single);
  EXPECT_GT(AoS.StridedBytesPerItem, 0.0);
  EXPECT_DOUBLE_EQ(SoA.StridedBytesPerItem, 0.0);
  EXPECT_DOUBLE_EQ(AoS.StreamedBytesPerItem, 24.0) << "field reads stream";
}

//===----------------------------------------------------------------------===//
// Table 2: per-cell accuracy and structural findings
//===----------------------------------------------------------------------===//

class Table2Test : public ::testing::TestWithParam<Table2Cell> {};

TEST_P(Table2Test, ModelWithin40PercentOfPaper) {
  // 40% per cell: the paper's SoA 'DPC++ NUMA' column sits noticeably
  // above its own OpenMP SoA rows (0.60 vs 0.43 analytic float), which a
  // traffic-based model cannot fully reproduce; the aggregate test below
  // still requires a <20% mean error.
  const Table2Cell &Cell = GetParam();
  double Model = predictCpuNsps(Node, Cell.S, Cell.L, Cell.P, Cell.Par,
                                Node.coreCount())
                     .Nsps;
  double RelErr = std::abs(Model - Cell.PaperNsps) / Cell.PaperNsps;
  EXPECT_LT(RelErr, 0.40) << "model " << Model << " vs paper "
                          << Cell.PaperNsps;
}

INSTANTIATE_TEST_SUITE_P(AllCells, Table2Test, ::testing::ValuesIn(Table2));

TEST(Table2StructureTest, MeanAbsoluteErrorUnder20Percent) {
  double Sum = 0;
  for (const auto &Cell : Table2) {
    double Model = predictCpuNsps(Node, Cell.S, Cell.L, Cell.P, Cell.Par,
                                  Node.coreCount())
                       .Nsps;
    Sum += std::abs(Model - Cell.PaperNsps) / Cell.PaperNsps;
  }
  EXPECT_LT(Sum / std::size(Table2), 0.20);
}

TEST(Table2StructureTest, PlainDpcppIsAlwaysSlowest) {
  // Paper conclusion 1: without the NUMA policy, DPC++ loses bigly on the
  // 2-socket node.
  for (Scenario S : {Scenario::PrecalculatedFields, Scenario::AnalyticalFields})
    for (Layout L : {Layout::AoS, Layout::SoA})
      for (Precision P : {Precision::Single, Precision::Double}) {
        double OpenMp =
            predictCpuNsps(Node, S, L, P, Parallelization::OpenMP, 48).Nsps;
        double Flat =
            predictCpuNsps(Node, S, L, P, Parallelization::Dpcpp, 48).Nsps;
        double Numa =
            predictCpuNsps(Node, S, L, P, Parallelization::DpcppNuma, 48).Nsps;
        EXPECT_GT(Flat, 1.25 * OpenMp);
        EXPECT_GT(Flat, 1.25 * Numa);
      }
}

TEST(Table2StructureTest, NumaDpcppWithinFifteenPercentOfOpenMp) {
  // Paper conclusion 2: "only ~10% on average inferior".
  for (Scenario S : {Scenario::PrecalculatedFields, Scenario::AnalyticalFields})
    for (Layout L : {Layout::AoS, Layout::SoA})
      for (Precision P : {Precision::Single, Precision::Double}) {
        double OpenMp =
            predictCpuNsps(Node, S, L, P, Parallelization::OpenMP, 48).Nsps;
        double Numa =
            predictCpuNsps(Node, S, L, P, Parallelization::DpcppNuma, 48).Nsps;
        EXPECT_LT(Numa / OpenMp, 1.15);
        EXPECT_GT(Numa / OpenMp, 1.0);
      }
}

TEST(Table2StructureTest, DoubleIsAboutTwiceSingleInPrecalculated) {
  // Paper conclusion 4: "in the problem with precomputed fields, the
  // difference is almost twofold".
  for (Layout L : {Layout::AoS, Layout::SoA}) {
    double S = predictCpuNsps(Node, Scenario::PrecalculatedFields, L,
                              Precision::Single, Parallelization::OpenMP, 48)
                   .Nsps;
    double D = predictCpuNsps(Node, Scenario::PrecalculatedFields, L,
                              Precision::Double, Parallelization::OpenMP, 48)
                   .Nsps;
    EXPECT_NEAR(D / S, 2.0, 0.1);
  }
}

TEST(Table2StructureTest, PrecalculatedIsMemoryBound) {
  // Paper conclusion 5: the problem is memory bound.
  auto Pred = predictCpuNsps(Node, Scenario::PrecalculatedFields, Layout::AoS,
                             Precision::Single, Parallelization::OpenMP, 48);
  EXPECT_TRUE(Pred.memoryBound());
}

//===----------------------------------------------------------------------===//
// Table 3: GPUs
//===----------------------------------------------------------------------===//

struct Table3Cell {
  Layout L;
  Scenario S;
  bool Iris; // false = P630
  double PaperNsps;
};

const Table3Cell Table3[] = {
    {Layout::AoS, Scenario::PrecalculatedFields, false, 4.76},
    {Layout::AoS, Scenario::AnalyticalFields, false, 4.45},
    {Layout::AoS, Scenario::PrecalculatedFields, true, 2.10},
    {Layout::AoS, Scenario::AnalyticalFields, true, 2.10},
    {Layout::SoA, Scenario::PrecalculatedFields, false, 2.43},
    {Layout::SoA, Scenario::AnalyticalFields, false, 1.93},
    {Layout::SoA, Scenario::PrecalculatedFields, true, 1.42},
    {Layout::SoA, Scenario::AnalyticalFields, true, 1.00},
};

class Table3Test : public ::testing::TestWithParam<Table3Cell> {};

TEST_P(Table3Test, ModelWithin35PercentOfPaper) {
  const Table3Cell &Cell = GetParam();
  auto Gpu = Cell.Iris ? gpusim::GpuParameters::irisXeMax()
                       : gpusim::GpuParameters::p630();
  auto Profile = gpuKernelProfile(Cell.S, Cell.L, Precision::Single);
  double Model = gpusim::modelNsPerItem(Gpu, Profile, 10'000'000);
  double RelErr = std::abs(Model - Cell.PaperNsps) / Cell.PaperNsps;
  EXPECT_LT(RelErr, 0.35) << "model " << Model << " vs paper "
                          << Cell.PaperNsps;
}

INSTANTIATE_TEST_SUITE_P(AllCells, Table3Test, ::testing::ValuesIn(Table3));

TEST(Table3StructureTest, LayoutMattersOnGpusButNotCpus) {
  // Paper: "on Intel GPUs the run time may differ by more than half"
  // while CPUs see almost no difference.
  for (bool Iris : {false, true})
    for (Scenario S :
         {Scenario::PrecalculatedFields, Scenario::AnalyticalFields}) {
      auto Gpu = Iris ? gpusim::GpuParameters::irisXeMax()
                      : gpusim::GpuParameters::p630();
      double AoS = gpusim::modelNsPerItem(
          Gpu, gpuKernelProfile(S, Layout::AoS, Precision::Single), 1e7);
      double SoA = gpusim::modelNsPerItem(
          Gpu, gpuKernelProfile(S, Layout::SoA, Precision::Single), 1e7);
      EXPECT_GT(AoS / SoA, 1.4) << "AoS must be much slower on GPUs";
    }
  double CpuAoS = predictCpuNsps(Node, Scenario::PrecalculatedFields,
                                 Layout::AoS, Precision::Single,
                                 Parallelization::DpcppNuma, 48)
                      .Nsps;
  double CpuSoA = predictCpuNsps(Node, Scenario::PrecalculatedFields,
                                 Layout::SoA, Precision::Single,
                                 Parallelization::DpcppNuma, 48)
                      .Nsps;
  EXPECT_LT(std::abs(CpuAoS - CpuSoA) / CpuAoS, 0.20)
      << "CPU layouts must be comparable (paper conclusion 3)";
}

TEST(Table3StructureTest, CpuToGpuSlowdownFactorsMatchPaper) {
  // Paper Section 5.3: "the code on P630 works slower only by a factor of
  // 3.5-4.5, and the code on Iris Xe Max ... 1.7-2.6, compared to 2
  // high-end CPUs."
  double Cpu = predictCpuNsps(Node, Scenario::PrecalculatedFields, Layout::SoA,
                              Precision::Single, Parallelization::DpcppNuma,
                              48)
                   .Nsps;
  double P630 = gpusim::modelNsPerItem(
      gpusim::GpuParameters::p630(),
      gpuKernelProfile(Scenario::PrecalculatedFields, Layout::SoA,
                       Precision::Single),
      1e7);
  double Iris = gpusim::modelNsPerItem(
      gpusim::GpuParameters::irisXeMax(),
      gpuKernelProfile(Scenario::PrecalculatedFields, Layout::SoA,
                       Precision::Single),
      1e7);
  EXPECT_GT(P630 / Cpu, 2.5);
  EXPECT_LT(P630 / Cpu, 5.5);
  EXPECT_GT(Iris / Cpu, 1.4);
  EXPECT_LT(Iris / Cpu, 3.2);
}

TEST(GpuModelTest, DoubleEmulationPenalizesIris) {
  auto Iris = gpusim::GpuParameters::irisXeMax();
  gpusim::KernelProfile P;
  P.FlopsPerItem = 1000; // compute bound
  P.DoublePrecision = false;
  double Single = gpusim::modelNsPerItem(Iris, P, 1e6);
  P.DoublePrecision = true;
  double Double = gpusim::modelNsPerItem(Iris, P, 1e6);
  EXPECT_GT(Double / Single, 8.0)
      << "FP64 emulation must be crushing (paper reports single only)";
}

TEST(GpuModelTest, LaunchOverheadVanishesPerItemAtScale) {
  auto Gpu = gpusim::GpuParameters::p630();
  gpusim::KernelProfile P;
  P.StreamedBytesPerItem = 10;
  double Small = gpusim::modelNsPerItem(Gpu, P, 1000);
  double Large = gpusim::modelNsPerItem(Gpu, P, 10'000'000);
  EXPECT_GT(Small, 2.0 * Large);
}

//===----------------------------------------------------------------------===//
// Fig. 1: strong scaling
//===----------------------------------------------------------------------===//

TEST(Fig1Test, SpeedupIsMonotoneNonDecreasing) {
  for (Parallelization Par :
       {Parallelization::OpenMP, Parallelization::DpcppNuma}) {
    double Prev = 0;
    for (int T = 1; T <= 48; T += 1) {
      double S = predictSpeedup(Node, Scenario::PrecalculatedFields,
                                Layout::AoS, Precision::Single, Par, T);
      EXPECT_GE(S, Prev - 1e-9) << "threads " << T;
      Prev = S;
    }
  }
}

TEST(Fig1Test, NearLinearUntilSocketBandwidthSaturates) {
  // Paper: "close to linear speedup is observed until the code fully
  // utilizes memory bandwidth of the first socket".
  double S4 = predictSpeedup(Node, Scenario::PrecalculatedFields, Layout::AoS,
                             Precision::Single, Parallelization::OpenMP, 4);
  EXPECT_NEAR(S4, 4.0, 0.3);
  double S24 = predictSpeedup(Node, Scenario::PrecalculatedFields, Layout::AoS,
                              Precision::Single, Parallelization::OpenMP, 24);
  EXPECT_LT(S24, 16.0) << "bandwidth wall inside the socket";
}

TEST(Fig1Test, SecondSocketResumesScaling) {
  double S24 = predictSpeedup(Node, Scenario::PrecalculatedFields, Layout::AoS,
                              Precision::Single, Parallelization::OpenMP, 24);
  double S48 = predictSpeedup(Node, Scenario::PrecalculatedFields, Layout::AoS,
                              Precision::Single, Parallelization::OpenMP, 48);
  EXPECT_GT(S48, 1.7 * S24) << "adding the second socket must ~double";
}

TEST(Fig1Test, DpcppNumaShowsSuperlinearStart) {
  // Paper: "For DPC++ NUMA implementations, super-linear acceleration is
  // observed at the beginning. This is because the DPC++ single core
  // version is quite slow."
  double S2 = predictSpeedup(Node, Scenario::PrecalculatedFields, Layout::AoS,
                             Precision::Single, Parallelization::DpcppNuma, 2);
  EXPECT_GT(S2, 2.0);
}

TEST(Fig1Test, FortyEightCoreEfficiencyNearPaperValue) {
  // Paper: "approaching to 63% of strong scaling efficiency when using 48
  // cores" for DPC++ NUMA.
  double S48 =
      predictSpeedup(Node, Scenario::PrecalculatedFields, Layout::AoS,
                     Precision::Single, Parallelization::DpcppNuma, 48);
  double Efficiency = S48 / 48.0;
  EXPECT_GT(Efficiency, 0.50);
  EXPECT_LT(Efficiency, 0.80);
}

//===----------------------------------------------------------------------===//
// First-iteration effect (Section 5.3)
//===----------------------------------------------------------------------===//

TEST(FirstIterationTest, DpcppFirstIterationAboutFiftyPercentSlower) {
  // Paper: "the first iteration takes 50% longer time than the subsequent
  // ones" (JIT + cold memory). One iteration = 1e7 particles x 1e3 steps
  // at ~0.5 NSPS ~= 5e9 ns.
  double IterationNs = 5e9;
  double JitNs = 1.5e9;
  double Factor = predictFirstIterationFactor(Parallelization::Dpcpp,
                                              IterationNs, JitNs);
  EXPECT_GT(Factor, 1.3);
  EXPECT_LT(Factor, 1.7);
  // OpenMP pays only the first-touch part.
  double OmpFactor = predictFirstIterationFactor(Parallelization::OpenMP,
                                                 IterationNs, JitNs);
  EXPECT_LT(OmpFactor, Factor);
  EXPECT_GT(OmpFactor, 1.05);
}

//===----------------------------------------------------------------------===//
// Machine model
//===----------------------------------------------------------------------===//

TEST(MachineModelTest, PaperNodePeakFlopsNearTable1) {
  // Table 1: 3.6 TFlops single precision for the 2-socket node.
  EXPECT_NEAR(Node.peakFlopsSingle(), 3.6e12, 0.4e12);
  EXPECT_EQ(Node.coreCount(), 48);
}

} // namespace
