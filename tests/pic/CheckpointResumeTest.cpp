//===-- tests/pic/CheckpointResumeTest.cpp - Save/restore bit-identity ---===//
//
// Part of the hichi-boris-dpcpp-repro project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The full-state checkpoint contract at the simulation level: running N
// steps, saving, restoring into a FRESH simulation, and running N more
// must land on exactly the state-hash of 2N uninterrupted steps — the
// restart replays the same `t += dt` accumulation from the same bits.
// Holds in classic and step-graph mode (a restore discards the captured
// graph; the recapture is part of what is being tested).
//
//===----------------------------------------------------------------------===//

#include "pic/Diagnostics.h"
#include "pic/PicSimulation.h"

#include "gtest/gtest.h"

#include <cmath>
#include <cstdio>
#include <memory>

using namespace hichi;
using namespace hichi::pic;

namespace {

std::unique_ptr<PicSimulation<double>> makeLangmuirSim(bool UseGraph) {
  const GridSize N{16, 4, 4};
  const Vector3<double> Step(0.5, 0.5, 0.5);
  const double BoxLength = double(N.Nx) * Step.X;
  const double Volume = BoxLength * 2.0 * 2.0;
  const int PerCell = 2;
  const Index NumParticles = N.count() * PerCell;
  const double Weight = Volume / (4.0 * constants::Pi * double(NumParticles));

  PicOptions<double> Options;
  Options.LightVelocity = 1.0;
  Options.SortEveryNSteps = 5; // exercise sorting on both sides of a restore
  Options.UseStepGraph = UseGraph;
  auto Sim = std::make_unique<PicSimulation<double>>(
      N, Vector3<double>(0, 0, 0), Step, NumParticles,
      ParticleTypeTable<double>::natural(), Options);

  const double V0 = 0.02;
  const double K = 2.0 * constants::Pi / BoxLength;
  for (Index C = 0; C < N.count(); ++C) {
    const Index I = C / (N.Ny * N.Nz);
    const Index J = (C / N.Nz) % N.Ny;
    const Index K3 = C % N.Nz;
    for (int P = 0; P < PerCell; ++P) {
      ParticleT<double> Particle;
      Particle.Position = {(double(I) + (P + 0.5) / PerCell) * Step.X,
                           (double(J) + 0.5) * Step.Y,
                           (double(K3) + 0.5) * Step.Z};
      const double Vx = V0 * std::sin(K * Particle.Position.X);
      Particle.Momentum = {Vx / std::sqrt(1 - Vx * Vx), 0, 0};
      Particle.Weight = Weight;
      Particle.Type = PS_Electron;
      Sim->addParticle(Particle);
    }
  }
  return Sim;
}

std::uint64_t hashOf(const PicSimulation<double> &Sim) {
  return picStateHash(Sim.particles(), Sim.grid());
}

/// The Langmuir setup with the moving window switched on: the window
/// slides ~1 plane every dx/(c dt) steps, so a 12-step half run saves
/// mid-shift state (nonzero ring base, retired/injected history).
std::unique_ptr<PicSimulation<double>> makeMovingWindowSim(bool UseGraph) {
  const GridSize N{16, 4, 4};
  const Vector3<double> Step(0.5, 0.5, 0.5);
  const double BoxLength = double(N.Nx) * Step.X;
  const double Volume = BoxLength * 2.0 * 2.0;
  const int PerCell = 2;
  const Index NumParticles = N.count() * PerCell;
  const double Weight = Volume / (4.0 * constants::Pi * double(NumParticles));

  PicOptions<double> Options;
  Options.LightVelocity = 1.0;
  Options.SortEveryNSteps = 5;
  Options.UseStepGraph = UseGraph;
  Options.MovingWindow.Enabled = true;
  Options.MovingWindow.Speed = 1.0;
  Options.MovingWindow.InjectPerCell = PerCell;
  Options.MovingWindow.InjectType = short(PS_Electron);
  Options.MovingWindow.InjectWeight = Weight;
  auto Sim = std::make_unique<PicSimulation<double>>(
      N, Vector3<double>(0, 0, 0), Step,
      NumParticles + Index(4) * N.Ny * N.Nz * Index(PerCell),
      ParticleTypeTable<double>::natural(), Options);

  const double V0 = 0.02;
  const double K = 2.0 * constants::Pi / BoxLength;
  for (Index C = 0; C < N.count(); ++C) {
    const Index I = C / (N.Ny * N.Nz);
    const Index J = (C / N.Nz) % N.Ny;
    const Index K3 = C % N.Nz;
    for (int P = 0; P < PerCell; ++P) {
      ParticleT<double> Particle;
      Particle.Position = {(double(I) + (P + 0.5) / PerCell) * Step.X,
                           (double(J) + 0.5) * Step.Y,
                           (double(K3) + 0.5) * Step.Z};
      const double Vx = V0 * std::sin(K * Particle.Position.X);
      Particle.Momentum = {Vx / std::sqrt(1 - Vx * Vx), 0, 0};
      Particle.Weight = Weight;
      Particle.Type = PS_Electron;
      Sim->addParticle(Particle);
    }
  }
  return Sim;
}

void checkResumeBitIdentical(bool UseGraph) {
  const std::string Path = testing::TempDir() + "pic_resume.ckpt";
  const int N = 12;

  auto Uninterrupted = makeLangmuirSim(UseGraph);
  Uninterrupted->run(2 * N);

  auto FirstHalf = makeLangmuirSim(UseGraph);
  FirstHalf->run(N);
  std::string Error;
  ASSERT_TRUE(FirstHalf->saveState(Path, &Error)) << Error;
  const std::uint64_t MidHash = hashOf(*FirstHalf);

  auto Resumed = makeLangmuirSim(UseGraph);
  ASSERT_TRUE(Resumed->restoreState(Path, &Error)) << Error;
  EXPECT_EQ(Resumed->stepCount(), N);
  EXPECT_EQ(double(Resumed->time()), double(FirstHalf->time()));
  EXPECT_EQ(hashOf(*Resumed), MidHash); // the restore itself is bitwise
  Resumed->run(N);

  EXPECT_EQ(hashOf(*Resumed), hashOf(*Uninterrupted))
      << "N + save + restore + N diverged from 2N uninterrupted steps";
  std::remove(Path.c_str());
}

TEST(CheckpointResumeTest, ResumeBitIdenticalClassic) {
  checkResumeBitIdentical(/*UseGraph=*/false);
}

TEST(CheckpointResumeTest, ResumeBitIdenticalGraphReplay) {
  checkResumeBitIdentical(/*UseGraph=*/true);
}

void checkMovingWindowResumeBitIdentical(bool UseGraph) {
  const std::string Path = testing::TempDir() + "pic_window_resume.ckpt";
  const int N = 12;

  auto Uninterrupted = makeMovingWindowSim(UseGraph);
  Uninterrupted->run(2 * N);

  auto FirstHalf = makeMovingWindowSim(UseGraph);
  FirstHalf->run(N);
  // The save must happen with a displaced window: a nonzero ring base is
  // what v3 exists for.
  ASSERT_GT(FirstHalf->windowShiftCount(), 0);
  ASSERT_GT(FirstHalf->windowOriginPlanes(), 0);
  std::string Error;
  ASSERT_TRUE(FirstHalf->saveState(Path, &Error)) << Error;
  const std::uint64_t MidHash = hashOf(*FirstHalf);

  auto Resumed = makeMovingWindowSim(UseGraph);
  ASSERT_TRUE(Resumed->restoreState(Path, &Error)) << Error;
  EXPECT_EQ(Resumed->stepCount(), N);
  EXPECT_EQ(Resumed->windowOriginPlanes(), FirstHalf->windowOriginPlanes());
  EXPECT_EQ(Resumed->windowShiftCount(), FirstHalf->windowShiftCount());
  EXPECT_EQ(hashOf(*Resumed), MidHash); // the restore itself is bitwise
  Resumed->run(N);

  EXPECT_EQ(hashOf(*Resumed), hashOf(*Uninterrupted))
      << "moving-window N + save + restore + N diverged from 2N "
         "uninterrupted steps";
  EXPECT_EQ(Resumed->windowOriginPlanes(), Uninterrupted->windowOriginPlanes());
  std::remove(Path.c_str());
}

TEST(CheckpointResumeTest, MovingWindowResumeBitIdenticalClassic) {
  checkMovingWindowResumeBitIdentical(/*UseGraph=*/false);
}

TEST(CheckpointResumeTest, MovingWindowResumeBitIdenticalGraphReplay) {
  checkMovingWindowResumeBitIdentical(/*UseGraph=*/true);
}

TEST(CheckpointResumeTest, RestoreFailuresReportReasons) {
  auto Sim = makeLangmuirSim(false);
  std::string Error;
  EXPECT_FALSE(Sim->restoreState(testing::TempDir() + "does_not_exist.ckpt",
                                 &Error));
  EXPECT_NE(Error.find("cannot open"), std::string::npos) << Error;
}

} // namespace
