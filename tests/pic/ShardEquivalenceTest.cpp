//===-- tests/pic/ShardEquivalenceTest.cpp - Shard-axis equivalence ------===//
//
// Part of the hichi-boris-dpcpp-repro project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sharded backend's end-to-end determinism guarantee, gated in CI
/// as the `pic_shard_equivalence` ctest target: a PIC simulation whose
/// stages run on persistent shards — affinity-routed per-shard push
/// launches with first-touched arenas, per-shard deposit
/// accumulate→reduce chains, shard-partitioned field tiles — is
/// *bit-identical* to the all-serial loop for every shard count x
/// stage combination x particle layout x Maxwell solver. On top of the
/// 100-step state hashes sit bitwise memcmp checks of the two kernels
/// the shards actually split: the deposit (J lattices) and the push
/// (particle positions/momenta).
///
//===----------------------------------------------------------------------===//

#include "exec/BackendRegistry.h"
#include "exec/StepLoop.h"
#include "fields/DipoleWave.h"
#include "pic/Diagnostics.h"
#include "pic/PicSimulation.h"
#include "pic/TiledCurrentAccumulator.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

using namespace hichi;
using namespace hichi::pic;

namespace {

/// The shard counts of the equivalence matrix: one shard (degenerate),
/// even/odd splits, and more shards than the grid has x-planes per
/// tile-group (13 over 16 planes — ragged everywhere).
const int ShardAxis[] = {1, 2, 5, 13};

/// A 100-step Langmuir-style simulation on a power-of-two grid (so both
/// solvers run the same setup), with each stage on the given backend;
/// sharded stages get \p Shards as their thread (= shard) count.
template <typename Array>
std::uint64_t shardSimulationHash(FieldSolverKind Solver,
                                  const std::string &PushBackend,
                                  const std::string &DepositBackend,
                                  const std::string &FieldBackend,
                                  int Shards) {
  const GridSize N{16, 4, 4};
  PicOptions<double> Options;
  Options.LightVelocity = 1.0;
  Options.SortEveryNSteps = 7; // exercise re-sorting mid-run
  Options.Solver = Solver;
  Options.PushBackend = PushBackend;
  Options.DepositBackend = DepositBackend;
  Options.FieldBackend = FieldBackend;
  if (PushBackend == "sharded")
    Options.PushThreads = Shards;
  if (DepositBackend == "sharded")
    Options.DepositThreads = Shards;
  if (FieldBackend == "sharded")
    Options.FieldThreads = Shards;
  const int PerCell = 2;
  PicSimulation<double, Array> Sim(N, {0, 0, 0}, {0.5, 0.5, 0.5},
                                   N.count() * PerCell,
                                   ParticleTypeTable<double>::natural(),
                                   Options);
  for (Index C = 0; C < N.count(); ++C) {
    const Index I = C / (N.Ny * N.Nz);
    const Index J = (C / N.Nz) % N.Ny;
    const Index K = C % N.Nz;
    for (int P = 0; P < PerCell; ++P) {
      ParticleT<double> Particle;
      Particle.Position = {(double(I) + 0.25 + 0.5 * P) * 0.5,
                           (double(J) + 0.5) * 0.5, (double(K) + 0.5) * 0.5};
      const double Vx =
          0.02 * std::sin(2.0 * constants::Pi * Particle.Position.X / 8.0);
      Particle.Momentum = {Vx / std::sqrt(1 - Vx * Vx), 0, 0};
      Particle.Weight = 0.05;
      Particle.Type = PS_Electron;
      Sim.addParticle(Particle);
    }
  }
  Sim.run(100);
  return picStateHash(Sim.particles(), Sim.grid());
}

template <typename Array>
void checkAllStagesShardedAcrossShardCounts(FieldSolverKind Solver) {
  const std::uint64_t Reference = shardSimulationHash<Array>(
      Solver, "serial", "serial", "serial", 0);
  for (int Shards : ShardAxis)
    EXPECT_EQ(shardSimulationHash<Array>(Solver, "sharded", "sharded",
                                         "sharded", Shards),
              Reference)
        << "shards=" << Shards;
}

TEST(ShardEquivalenceTest, StateHashInvariantAcrossShardCountsFdtdAoS) {
  checkAllStagesShardedAcrossShardCounts<ParticleArrayAoS<double>>(
      FieldSolverKind::Fdtd);
}

TEST(ShardEquivalenceTest, StateHashInvariantAcrossShardCountsFdtdSoA) {
  checkAllStagesShardedAcrossShardCounts<ParticleArraySoA<double>>(
      FieldSolverKind::Fdtd);
}

TEST(ShardEquivalenceTest, StateHashInvariantAcrossShardCountsSpectralAoS) {
  checkAllStagesShardedAcrossShardCounts<ParticleArrayAoS<double>>(
      FieldSolverKind::Spectral);
}

TEST(ShardEquivalenceTest, StateHashInvariantAcrossShardCountsSpectralSoA) {
  checkAllStagesShardedAcrossShardCounts<ParticleArraySoA<double>>(
      FieldSolverKind::Spectral);
}

TEST(ShardEquivalenceTest, StateHashInvariantForMixedStageBackends) {
  // Shards per stage, other stages on every other registered backend:
  // the shard routing composes with, not depends on, its neighbours.
  for (FieldSolverKind Solver :
       {FieldSolverKind::Fdtd, FieldSolverKind::Spectral}) {
    const std::uint64_t Reference =
        shardSimulationHash<ParticleArrayAoS<double>>(Solver, "serial",
                                                      "serial", "serial", 0);
    for (const std::string Other : {"openmp", "dpcpp", "async-pipeline"}) {
      EXPECT_EQ(shardSimulationHash<ParticleArrayAoS<double>>(
                    Solver, "sharded", Other, Other, 5),
                Reference)
          << "sharded push, " << Other << " elsewhere";
      EXPECT_EQ(shardSimulationHash<ParticleArrayAoS<double>>(
                    Solver, Other, "sharded", Other, 5),
                Reference)
          << "sharded deposit, " << Other << " elsewhere";
      EXPECT_EQ(shardSimulationHash<ParticleArrayAoS<double>>(
                    Solver, Other, Other, "sharded", 5),
                Reference)
          << "sharded field solve, " << Other << " elsewhere";
    }
  }
}

//===----------------------------------------------------------------------===//
// Bitwise memcmp: the sharded deposit against the serial scatter
//===----------------------------------------------------------------------===//

void expectBitwiseEqual(const ScalarLattice<double> &A,
                        const ScalarLattice<double> &B, const char *What) {
  ASSERT_EQ(A.raw().size(), B.raw().size());
  EXPECT_EQ(std::memcmp(A.raw().data(), B.raw().data(),
                        A.raw().size() * sizeof(double)),
            0)
      << What;
}

TEST(ShardEquivalenceTest, DepositBitwiseMatchesSerialScatter) {
  // Random sub-cell moves spanning the periodic box, deposited through
  // the sharded backend's per-shard accumulate→reduce chains — the J
  // lattices must equal the serial particle-order scatter byte for
  // byte, for every shard count x tile count.
  const GridSize Size{16, 5, 6};
  const Vector3<double> Origin(-2.0, 1.0, 0.0), Step(0.5, 1.0, 0.8);
  const Index N = 400;
  const double Dt = 0.31;

  ParticleArrayAoS<double> Particles(N);
  std::vector<Vector3<double>> OldPos, NewPos;
  RandomStream<double> Rng(17);
  for (Index I = 0; I < N; ++I) {
    const Vector3<double> From(
        Origin.X + Rng.uniform(0.0, double(Size.Nx)) * Step.X,
        Origin.Y + Rng.uniform(0.0, double(Size.Ny)) * Step.Y,
        Origin.Z + Rng.uniform(0.0, double(Size.Nz)) * Step.Z);
    const Vector3<double> To(From.X + Rng.uniform(-0.45, 0.45) * Step.X,
                             From.Y + Rng.uniform(-0.45, 0.45) * Step.Y,
                             From.Z + Rng.uniform(-0.45, 0.45) * Step.Z);
    ParticleT<double> P;
    P.Position = To;
    P.Weight = Rng.uniform(0.5, 2.0);
    P.Type = PS_Electron;
    Particles.pushBack(P);
    OldPos.push_back(From);
    NewPos.push_back(To);
  }
  auto Types = ParticleTypeTable<double>::natural();
  auto View = Particles.view();

  YeeGrid<double> Ref(Size, Origin, Step);
  for (Index I = 0; I < N; ++I)
    depositCurrentEsirkepov(Ref, OldPos[I], NewPos[I],
                            Types[View[I].type()].Charge * View[I].weight(),
                            Dt);

  for (int Shards : ShardAxis) {
    auto Backend = exec::createBackend("sharded", {Shards, 0});
    ASSERT_NE(Backend, nullptr);
    for (int Tiles : {1, 5, 8, 64}) {
      TiledCurrentAccumulator<double> Accumulator(Size, Origin, Step, Tiles);
      YeeGrid<double> G(Size, Origin, Step);
      RunStats Stats;
      Accumulator.deposit(G, View, OldPos.data(), NewPos.data(), Types.data(),
                          Dt, /*ChargeConserving=*/true, *Backend, {}, Stats);
      SCOPED_TRACE("shards=" + std::to_string(Shards) + " tiles=" +
                   std::to_string(Accumulator.tileCount()));
      expectBitwiseEqual(G.Jx, Ref.Jx, "Jx");
      expectBitwiseEqual(G.Jy, Ref.Jy, "Jy");
      expectBitwiseEqual(G.Jz, Ref.Jz, "Jz");
    }
  }
}

//===----------------------------------------------------------------------===//
// Bitwise memcmp: the sharded push against the serial step loop
//===----------------------------------------------------------------------===//

template <typename Array>
std::vector<ParticleT<double>> runPush(const std::string &BackendName,
                                       int Shards) {
  const Index N = 257; // prime: ragged shard blocks
  Array Particles(N);
  initializeBallAtRest(Particles, N, Vector3<double>::zero(), 1e-4,
                       PS_Electron, /*Seed=*/4242);
  auto Wave = DipoleWaveSource<double>::paperBenchmark();
  auto Types = ParticleTypeTable<double>::cgs();
  auto Backend = exec::createBackend(BackendName, {Shards, 0});
  EXPECT_NE(Backend, nullptr);
  exec::StepLoopOptions<double> Opts; // Auto fusion: chains on sharded
  exec::runStepLoop(*Backend, {}, Particles, Wave, Types, 1e-13, 8, Opts);

  std::vector<ParticleT<double>> Out;
  auto View = Particles.view();
  for (Index I = 0; I < N; ++I) {
    ParticleT<double> P;
    P.Position = View[I].position();
    P.Momentum = View[I].momentum();
    P.Gamma = View[I].gamma();
    Out.push_back(P);
  }
  return Out;
}

template <typename Array> void checkPushBitwise() {
  const std::vector<ParticleT<double>> Reference =
      runPush<Array>("serial", 0);
  for (int Shards : ShardAxis) {
    const std::vector<ParticleT<double>> Sharded =
        runPush<Array>("sharded", Shards);
    ASSERT_EQ(Sharded.size(), Reference.size());
    for (std::size_t I = 0; I < Reference.size(); ++I) {
      EXPECT_EQ(std::memcmp(&Sharded[I].Position, &Reference[I].Position,
                            sizeof(Vector3<double>)),
                0)
          << "shards=" << Shards << " particle " << I << " position";
      EXPECT_EQ(std::memcmp(&Sharded[I].Momentum, &Reference[I].Momentum,
                            sizeof(Vector3<double>)),
                0)
          << "shards=" << Shards << " particle " << I << " momentum";
      EXPECT_EQ(std::memcmp(&Sharded[I].Gamma, &Reference[I].Gamma,
                            sizeof(double)),
                0)
          << "shards=" << Shards << " particle " << I << " gamma";
    }
  }
}

TEST(ShardEquivalenceTest, PushBitwiseMatchesSerialAoS) {
  checkPushBitwise<ParticleArrayAoS<double>>();
}

TEST(ShardEquivalenceTest, PushBitwiseMatchesSerialSoA) {
  checkPushBitwise<ParticleArraySoA<double>>();
}

} // namespace
