//===-- tests/pic/CellListAndDiagnosticsTest.cpp -------------------------===//
//
// Part of the hichi-boris-dpcpp-repro project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/EnsembleInit.h"
#include "pic/CellListEnsemble.h"
#include "pic/Diagnostics.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace hichi;
using namespace hichi::pic;

namespace {

//===----------------------------------------------------------------------===//
// CellListEnsemble — the paper's "first method" of particle storage
//===----------------------------------------------------------------------===//

TEST(CellListTest, AddPlacesIntoOwningCell) {
  CellListEnsemble<double> E({4, 4, 4}, {0, 0, 0}, {1, 1, 1});
  ParticleT<double> P;
  P.Position = {2.5, 1.5, 0.5};
  E.addParticle(P);
  EXPECT_EQ(E.size(), 1);
  EXPECT_TRUE(E.isConsistent());
  Index Cell = E.indexer().cellOf(P.Position);
  EXPECT_EQ(Index(E.cell(Cell).size()), 1);
}

TEST(CellListTest, MigrateRestoresConsistency) {
  CellListEnsemble<double> E({4, 4, 4}, {0, 0, 0}, {1, 1, 1});
  RandomStream<double> Rng(3);
  for (int I = 0; I < 200; ++I) {
    ParticleT<double> P;
    P.Position = {Rng.uniform(0, 4), Rng.uniform(0, 4), Rng.uniform(0, 4)};
    E.addParticle(P);
  }
  // Displace everyone without telling the container.
  E.forEachParticle([&](ParticleT<double> &P) {
    P.Position += Vector3<double>(Rng.uniform(-1, 1), Rng.uniform(-1, 1),
                                  Rng.uniform(-1, 1));
    // Keep positions inside the box so cellOf stays within wrap range.
    P.Position = {std::fmod(P.Position.X + 4, 4.0),
                  std::fmod(P.Position.Y + 4, 4.0),
                  std::fmod(P.Position.Z + 4, 4.0)};
  });
  EXPECT_FALSE(E.isConsistent());
  Index Moved = E.migrate();
  EXPECT_GT(Moved, 0);
  EXPECT_TRUE(E.isConsistent());
  EXPECT_EQ(E.size(), 200);
}

TEST(CellListTest, MigrateIsIdempotent) {
  CellListEnsemble<double> E({2, 2, 2}, {0, 0, 0}, {1, 1, 1});
  RandomStream<double> Rng(5);
  for (int I = 0; I < 50; ++I) {
    ParticleT<double> P;
    P.Position = {Rng.uniform(0, 2), Rng.uniform(0, 2), Rng.uniform(0, 2)};
    E.addParticle(P);
  }
  E.migrate();
  EXPECT_EQ(E.migrate(), 0) << "second migrate must move nothing";
}

TEST(CellListTest, PushMatchesFlatArrayKernel) {
  // The same particles pushed through the cell-list path and the flat
  // AoS path must land on identical states (same kernel, same order of
  // operations per particle).
  const FieldSample<double> F{{0.1, 0, 0}, {0, 0, 1.0}};
  UniformFieldSource<double> Source{F};
  auto Types = ParticleTypeTable<double>::natural();

  CellListEnsemble<double> Cells({4, 4, 4}, {0, 0, 0}, {1, 1, 1});
  ParticleArrayAoS<double> Flat(64);
  RandomStream<double> Rng(6);
  for (int I = 0; I < 64; ++I) {
    ParticleT<double> P;
    P.Position = {Rng.uniform(0.5, 3.5), Rng.uniform(0.5, 3.5),
                  Rng.uniform(0.5, 3.5)};
    P.Momentum = Rng.inBall(Vector3<double>::zero(), 0.5);
    P.Gamma = lorentzGamma(P.Momentum, 1.0, 1.0);
    Cells.addParticle(P);
    Flat.pushBack(P);
  }
  for (int Step = 0; Step < 10; ++Step) {
    pushCellList(Cells, Source, Types, 0.01, 0.0, 1.0);
    for (Index I = 0; I < 64; ++I)
      BorisPusher::push<double>(Flat[I], F, Types.data(), 0.01, 1.0);
  }
  EXPECT_TRUE(Cells.isConsistent());

  // Compare as multisets of momenta (cell order is a permutation of the
  // flat order).
  std::vector<double> CellNorms, FlatNorms;
  Cells.forEachParticle([&](ParticleT<double> &P) {
    CellNorms.push_back(P.Momentum.norm());
  });
  for (Index I = 0; I < 64; ++I)
    FlatNorms.push_back(Flat[I].momentum().norm());
  std::sort(CellNorms.begin(), CellNorms.end());
  std::sort(FlatNorms.begin(), FlatNorms.end());
  for (std::size_t I = 0; I < 64; ++I)
    EXPECT_DOUBLE_EQ(CellNorms[I], FlatNorms[I]);
}

//===----------------------------------------------------------------------===//
// Histograms
//===----------------------------------------------------------------------===//

TEST(Histogram1DTest, BinningAndBookkeeping) {
  Histogram1D H(0.0, 10.0, 10);
  H.add(0.5);        // bin 0
  H.add(9.99);       // bin 9
  H.add(5.0, 2.0);   // bin 5, weight 2
  H.add(-1.0);       // underflow
  H.add(10.0);       // overflow (right edge exclusive)
  EXPECT_DOUBLE_EQ(H.count(0), 1.0);
  EXPECT_DOUBLE_EQ(H.count(9), 1.0);
  EXPECT_DOUBLE_EQ(H.count(5), 2.0);
  EXPECT_DOUBLE_EQ(H.underflow(), 1.0);
  EXPECT_DOUBLE_EQ(H.overflow(), 1.0);
  EXPECT_DOUBLE_EQ(H.totalWeight(), 6.0);
  EXPECT_DOUBLE_EQ(H.binCenter(0), 0.5);
  EXPECT_EQ(H.peakBin(), 5);
}

TEST(Histogram2DTest, BinningAndClipping) {
  Histogram2D H(0, 4, 4, -1, 1, 8);
  H.add(1.5, 0.0);
  H.add(1.7, 0.1, 3.0);
  H.add(99, 0); // clipped
  EXPECT_DOUBLE_EQ(H.count(1, 4), 4.0);
  EXPECT_EQ(H.xBins(), 4);
  EXPECT_EQ(H.yBins(), 8);
}

//===----------------------------------------------------------------------===//
// Ensemble summaries and spectra
//===----------------------------------------------------------------------===//

TEST(SummarizeTest, MatchesHandComputation) {
  ParticleArrayAoS<double> P(2);
  ParticleT<double> A, B;
  A.Position = {1, 0, 0};
  A.Momentum = {0, 0, 0};
  A.Gamma = 1.0;
  A.Weight = 2.0;
  B.Position = {3, 0, 0};
  B.Momentum = {0, 3, 0};
  B.Gamma = lorentzGamma(B.Momentum, 1.0, 1.0);
  B.Weight = 1.0;
  P.pushBack(A);
  P.pushBack(B);
  auto Types = ParticleTypeTable<double>::natural();
  auto S = summarize(P, Types, 1.0);
  EXPECT_EQ(S.Count, 2);
  EXPECT_DOUBLE_EQ(S.MeanPosition.X, 2.0);
  EXPECT_DOUBLE_EQ(S.TotalWeight, 3.0);
  EXPECT_NEAR(S.MaxGamma, std::sqrt(10.0), 1e-12);
  EXPECT_NEAR(S.TotalKineticEnergy, 1.0 * (std::sqrt(10.0) - 1.0), 1e-12);
}

TEST(EnergySpectrumTest, ColdEnsembleIsAllInFirstBin) {
  ParticleArraySoA<double> P(100);
  initializeBallAtRest(P, 100, Vector3<double>::zero(), 1.0, PS_Electron);
  auto Types = ParticleTypeTable<double>::natural();
  auto H = energySpectrum(P, Types, /*MaxGamma=*/2.0, 10);
  EXPECT_DOUBLE_EQ(H.count(0), 100.0);
  EXPECT_DOUBLE_EQ(H.overflow(), 0.0);
}

TEST(CsvTest, HistogramRoundTripThroughFile) {
  Histogram1D H(0, 1, 4);
  H.add(0.1);
  H.add(0.6, 2.5);
  std::string Path = "/tmp/hichi_test_hist.csv";
  ASSERT_TRUE(writeCsv(H, Path));
  std::FILE *File = std::fopen(Path.c_str(), "r");
  ASSERT_NE(File, nullptr);
  char Header[64];
  ASSERT_NE(std::fgets(Header, sizeof(Header), File), nullptr);
  EXPECT_STREQ(Header, "bin_center,count\n");
  double Center, Count;
  ASSERT_EQ(std::fscanf(File, "%lf,%lf", &Center, &Count), 2);
  EXPECT_DOUBLE_EQ(Center, 0.125);
  EXPECT_DOUBLE_EQ(Count, 1.0);
  std::fclose(File);
  std::remove(Path.c_str());
}

TEST(CsvTest, ColumnsWriter) {
  std::string Path = "/tmp/hichi_test_cols.csv";
  ASSERT_TRUE(writeCsv({"t", "energy"}, {{0.0, 1.0}, {5.0, 6.0}}, Path));
  std::FILE *File = std::fopen(Path.c_str(), "r");
  ASSERT_NE(File, nullptr);
  char Line[128];
  ASSERT_NE(std::fgets(Line, sizeof(Line), File), nullptr);
  EXPECT_STREQ(Line, "t,energy\n");
  ASSERT_NE(std::fgets(Line, sizeof(Line), File), nullptr);
  EXPECT_STREQ(Line, "0,5\n");
  std::fclose(File);
  std::remove(Path.c_str());
}

} // namespace
