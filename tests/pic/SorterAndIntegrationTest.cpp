//===-- tests/pic/SorterAndIntegrationTest.cpp - Sort + full PIC ---------===//
//
// Part of the hichi-boris-dpcpp-repro project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The particle sorter (the paper's periodic cache-locality sort,
/// Section 3) and the end-to-end PIC validation: a cold Langmuir
/// oscillation whose frequency must come out at the plasma frequency
/// omega_p = sqrt(4 pi n e^2 / m), plus bounded total-energy drift.
///
//===----------------------------------------------------------------------===//

#include "pic/PicSimulation.h"

#include <gtest/gtest.h>

using namespace hichi;
using namespace hichi::pic;

namespace {

//===----------------------------------------------------------------------===//
// Sorter
//===----------------------------------------------------------------------===//

template <typename ArrayT> class SorterTest : public ::testing::Test {};
using SortArrays =
    ::testing::Types<ParticleArrayAoS<double>, ParticleArraySoA<double>>;
TYPED_TEST_SUITE(SorterTest, SortArrays);

TYPED_TEST(SorterTest, SortImprovesLocalityToPerfect) {
  TypeParam Particles(512);
  initializeBallAtRest(Particles, 512, Vector3<double>(4, 4, 4), 3.9,
                       PS_Electron, 77);
  CellIndexer<double> Indexer({8, 8, 8}, {0, 0, 0}, {1, 1, 1});

  double Before = cellLocalityScore(Particles, Indexer);
  sortByCell(Particles, Indexer);
  double After = cellLocalityScore(Particles, Indexer);
  EXPECT_GT(After, Before);

  // After sorting, consecutive particles share cells except at cell
  // boundaries: with <= 512 occupied cells over 511 adjacent pairs the
  // score is high but, more importantly, cell indices are nondecreasing.
  auto View = Particles.view();
  Index Prev = -1;
  for (Index I = 0; I < Particles.size(); ++I) {
    Index Cell = Indexer.cellOf(View[I].position());
    EXPECT_GE(Cell, Prev) << "cells must be nondecreasing after sort";
    Prev = Cell;
  }
}

TYPED_TEST(SorterTest, SortPreservesTheMultiset) {
  TypeParam Particles(128);
  initializeRandomEnsemble(Particles, 128,
                           ParticleTypeTable<double>::natural(),
                           Vector3<double>(2, 2, 2), 1.9, 3.0, 1.0,
                           PS_Electron, 5);
  double MomentumSumBefore = 0, WeightSumBefore = 0;
  for (Index I = 0; I < 128; ++I) {
    MomentumSumBefore += Particles[I].momentum().norm2();
    WeightSumBefore += Particles[I].weight();
  }
  CellIndexer<double> Indexer({4, 4, 4}, {0, 0, 0}, {1, 1, 1});
  sortByCell(Particles, Indexer);
  double MomentumSumAfter = 0, WeightSumAfter = 0;
  for (Index I = 0; I < 128; ++I) {
    MomentumSumAfter += Particles[I].momentum().norm2();
    WeightSumAfter += Particles[I].weight();
  }
  EXPECT_NEAR(MomentumSumAfter, MomentumSumBefore, 1e-9);
  EXPECT_NEAR(WeightSumAfter, WeightSumBefore, 1e-12);
}

TYPED_TEST(SorterTest, SortIsIdempotent) {
  TypeParam Particles(64);
  initializeBallAtRest(Particles, 64, Vector3<double>(2, 2, 2), 1.9,
                       PS_Electron, 3);
  CellIndexer<double> Indexer({4, 4, 4}, {0, 0, 0}, {1, 1, 1});
  sortByCell(Particles, Indexer);
  std::vector<ParticleT<double>> Once;
  for (Index I = 0; I < 64; ++I)
    Once.push_back(Particles[I].load());
  sortByCell(Particles, Indexer);
  for (Index I = 0; I < 64; ++I)
    EXPECT_EQ(Particles[I].position(), Once[std::size_t(I)].Position) << I;
}

TEST(CellIndexerTest, MapsPositionsToCells) {
  CellIndexer<double> Indexer({4, 4, 4}, {0, 0, 0}, {0.5, 0.5, 0.5});
  EXPECT_EQ(Indexer.cellOf({0.1, 0.1, 0.1}), 0);
  EXPECT_EQ(Indexer.cellOf({0.6, 0.1, 0.1}), 16); // i=1 -> (1*4+0)*4+0
  EXPECT_EQ(Indexer.cellOf({0.1, 0.6, 0.1}), 4);
  EXPECT_EQ(Indexer.cellOf({2.1, 0.1, 0.1}), 0) << "periodic wrap";
}

//===----------------------------------------------------------------------===//
// Full PIC: cold Langmuir oscillation
//===----------------------------------------------------------------------===//

TEST(PicIntegrationTest, LangmuirOscillationAtPlasmaFrequency) {
  // Natural units c = 1, m = 1, |q| = 1. Uniform electron lattice with a
  // sinusoidal velocity perturbation along x; the restoring space-charge
  // field oscillates at omega_p = sqrt(4 pi n). Choose the macro-weight
  // so omega_p = 1 => period 2 pi.
  const GridSize N{16, 4, 4};
  const Vector3<double> Step(0.5, 0.5, 0.5);
  const double Volume = 8.0 * 2.0 * 2.0;
  const int PerCell = 2;
  const Index NumParticles = N.count() * PerCell;
  // n = NumParticles * w / Volume = 1/(4 pi)  =>  w:
  const double Weight =
      Volume / (4.0 * constants::Pi * double(NumParticles));

  PicOptions<double> Options;
  Options.LightVelocity = 1.0;
  Options.SortEveryNSteps = 0;
  PicSimulation<double> Sim(N, {0, 0, 0}, Step, NumParticles,
                            ParticleTypeTable<double>::natural(), Options);

  // Regular lattice of electrons, velocity perturbation v = v0 sin(k x).
  const double V0 = 0.01;
  const double K = 2 * constants::Pi / 8.0; // fundamental mode of the box
  RandomStream<double> Rng(1);
  for (Index C = 0; C < N.count(); ++C) {
    Index I = C / (N.Ny * N.Nz);
    Index J = (C / N.Nz) % N.Ny;
    Index K3 = C % N.Nz;
    for (int P = 0; P < PerCell; ++P) {
      ParticleT<double> Particle;
      Particle.Position = {(double(I) + 0.25 + 0.5 * P) * Step.X,
                           (double(J) + 0.5) * Step.Y,
                           (double(K3) + 0.5) * Step.Z};
      double Vx = V0 * std::sin(K * Particle.Position.X);
      Particle.Momentum = {Vx / std::sqrt(1 - Vx * Vx), 0, 0};
      Particle.Weight = Weight;
      Particle.Type = PS_Electron;
      Sim.addParticle(Particle);
    }
  }

  // Track the field-energy oscillation: E-field energy peaks twice per
  // plasma period, first peak at t = pi/2 (quarter period).
  const double Dt = Sim.timeStep();
  const int StepsPerPeriod = int(2 * constants::Pi / Dt);
  double PeakEnergy = 0;
  double PeakTime = 0;
  double MinAfterPeak = 1e300;
  for (int S = 0; S < StepsPerPeriod; ++S) {
    Sim.step();
    double E = Sim.fieldEnergy();
    if (E > PeakEnergy) {
      PeakEnergy = E;
      PeakTime = Sim.time();
    }
  }
  (void)MinAfterPeak;
  ASSERT_GT(PeakEnergy, 0.0) << "space-charge field must build up";
  // First field-energy maximum at a quarter plasma period, t = pi/2
  // (tolerate the coarse-grid/finite-dt shift).
  EXPECT_NEAR(PeakTime, constants::Pi / 2, 0.35);
}

TEST(PicIntegrationTest, TotalEnergyDriftIsBounded) {
  // A *quiet start* (regular lattice, Gauss's law satisfied at t = 0 by
  // neutral pair placement) with a small coherent velocity perturbation:
  // total energy must hold to a few percent over 100 steps. (A random
  // cold start would violate Gauss's law initially and self-heat — the
  // classic PIC artifact — so the test must not use one.)
  const GridSize N{8, 4, 4};
  PicOptions<double> Options;
  Options.LightVelocity = 1.0;
  PicSimulation<double> Sim(N, {0, 0, 0}, {0.5, 0.5, 0.5}, 512,
                            ParticleTypeTable<double>::natural(), Options);
  for (Index C = 0; C < N.count(); ++C) {
    Index I = C / (N.Ny * N.Nz);
    Index J = (C / N.Nz) % N.Ny;
    Index K = C % N.Nz;
    Vector3<double> Pos((double(I) + 0.5) * 0.5, (double(J) + 0.5) * 0.5,
                        (double(K) + 0.5) * 0.5);
    double Vx = 0.01 * std::sin(2 * constants::Pi * Pos.X / 4.0);
    for (short Type : {short(PS_Electron), short(PS_Positron)}) {
      ParticleT<double> Particle;
      Particle.Position = Pos;
      // Electrons and positrons counter-stream: net charge stays zero,
      // net current drives a weak wave.
      double V = Type == PS_Electron ? Vx : -Vx;
      Particle.Momentum = {V / std::sqrt(1 - V * V), 0, 0};
      Particle.Weight = 0.05;
      Particle.Type = Type;
      Sim.addParticle(Particle);
    }
  }
  const double E0 = Sim.kineticEnergy() + Sim.fieldEnergy();
  ASSERT_GT(E0, 0.0);
  Sim.run(100);
  const double E1 = Sim.kineticEnergy() + Sim.fieldEnergy();
  // Momentum-conserving PIC (CIC interpolation + FDTD) is not exactly
  // energy conserving; at 8 cells per wavelength the driven mode damps a
  // few percent per plasma period. Bound the 100-step drift at 20% —
  // enough to catch sign errors (those blow up or halve the energy) while
  // accepting the scheme's documented dissipation.
  EXPECT_NEAR(E1 / E0, 1.0, 0.20)
      << "total energy must be approximately conserved";
}

TEST(PicIntegrationTest, NeutralPlasmaStaysQuiet) {
  // Co-located electron/positron pairs: zero net charge and current
  // everywhere; the fields must remain exactly zero and particles at rest.
  const GridSize N{4, 4, 4};
  PicOptions<double> Options;
  Options.LightVelocity = 1.0;
  PicSimulation<double> Sim(N, {0, 0, 0}, {1, 1, 1}, 128,
                            ParticleTypeTable<double>::natural(), Options);
  RandomStream<double> Rng(12);
  for (int P = 0; P < 64; ++P) {
    Vector3<double> Pos(Rng.uniform(0.0, 4.0), Rng.uniform(0.0, 4.0),
                        Rng.uniform(0.0, 4.0));
    for (short Type : {short(PS_Electron), short(PS_Positron)}) {
      ParticleT<double> Particle;
      Particle.Position = Pos;
      Particle.Type = Type;
      Sim.addParticle(Particle);
    }
  }
  Sim.run(20);
  EXPECT_DOUBLE_EQ(Sim.fieldEnergy(), 0.0);
  EXPECT_DOUBLE_EQ(Sim.kineticEnergy(), 0.0);
}

TEST(PicIntegrationTest, SoALayoutRunsTheSameLoop) {
  PicOptions<double> Options;
  Options.LightVelocity = 1.0;
  PicSimulation<double, ParticleArraySoA<double>> Sim(
      {4, 4, 4}, {0, 0, 0}, {1, 1, 1}, 32,
      ParticleTypeTable<double>::natural(), Options);
  for (int P = 0; P < 32; ++P) {
    ParticleT<double> Particle;
    Particle.Position = {0.1 * P, 0.2 * P, 0.3 * P};
    Particle.Momentum = {0.01, 0, 0};
    Sim.addParticle(Particle);
  }
  Sim.run(10);
  EXPECT_EQ(Sim.stepCount(), 10);
  EXPECT_GT(Sim.time(), 0.0);
}

TEST(PicSimulationTest, CourantGuardAndDefaults) {
  PicOptions<double> Options;
  Options.LightVelocity = 1.0;
  PicSimulation<double> Sim({4, 4, 4}, {0, 0, 0}, {1, 1, 1}, 4,
                            ParticleTypeTable<double>::natural(), Options);
  FdtdSolver<double> Solver(1.0);
  EXPECT_LE(Sim.timeStep(), Solver.courantLimit(Sim.grid()));
  EXPECT_GT(Sim.timeStep(), 0.0);
}

} // namespace
