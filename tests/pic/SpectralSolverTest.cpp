//===-- tests/pic/SpectralSolverTest.cpp - FFT Maxwell solver tests ------===//
//
// Part of the hichi-boris-dpcpp-repro project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The FFT-based solver's defining properties: exact (dispersion-free)
/// vacuum propagation at any time step — including steps far beyond the
/// FDTD Courant limit — exact energy conservation, and the correct
/// response to current sources. The last test races it against FDTD on
/// a coarse grid where FDTD's O((k dx)^2) dispersion is visible.
///
//===----------------------------------------------------------------------===//

#include "pic/FdtdSolver.h"
#include "pic/PicSimulation.h"
#include "pic/SpectralSolver.h"

#include <gtest/gtest.h>

using namespace hichi;
using namespace hichi::pic;

namespace {

/// Travelling plane wave along x (collocated initialization, which is
/// what the spectral solver assumes).
void initWave(YeeGrid<double> &G, int Mode) {
  const GridSize N = G.size();
  const double K = 2 * constants::Pi * Mode / double(N.Nx);
  for (Index I = 0; I < N.Nx; ++I)
    for (Index J = 0; J < N.Ny; ++J)
      for (Index K3 = 0; K3 < N.Nz; ++K3) {
        G.Ey(I, J, K3) = std::sin(K * double(I));
        G.Bz(I, J, K3) = std::sin(K * double(I));
      }
}

TEST(SpectralSolverTest, UniformFieldsAreStationary) {
  YeeGrid<double> G({8, 4, 4}, {0, 0, 0}, {1, 1, 1});
  G.Ex.fill(2.0);
  G.Bz.fill(-1.0);
  SpectralSolver<double> S({8, 4, 4}, {1, 1, 1}, 1.0);
  S.step(G, 0.7);
  EXPECT_NEAR(G.Ex(3, 1, 2), 2.0, 1e-12);
  EXPECT_NEAR(G.Bz(5, 0, 3), -1.0, 1e-12);
  EXPECT_NEAR(G.Ey(0, 0, 0), 0.0, 1e-12);
}

TEST(SpectralSolverTest, PlaneWaveAdvectsExactly) {
  // After time T, the wave must be sin(k(x - cT)) *exactly* — the
  // spectral solver has no dispersion error.
  const Index NX = 16;
  YeeGrid<double> G({NX, 4, 4}, {0, 0, 0}, {1, 1, 1});
  initWave(G, 2);
  SpectralSolver<double> S({NX, 4, 4}, {1, 1, 1}, 1.0);
  const double Dt = 0.37; // arbitrary; no Courant restriction
  const int Steps = 11;
  for (int T = 0; T < Steps; ++T)
    S.step(G, Dt);
  const double K = 2 * constants::Pi * 2 / double(NX);
  for (Index I = 0; I < NX; ++I) {
    double Expected = std::sin(K * (double(I) - Dt * Steps));
    EXPECT_NEAR(G.Ey(I, 1, 1), Expected, 1e-10) << I;
    EXPECT_NEAR(G.Bz(I, 2, 3), Expected, 1e-10) << I;
  }
}

TEST(SpectralSolverTest, GiantTimeStepStillExact) {
  // One step of 25 time units (the FDTD Courant limit here is ~0.577).
  const Index NX = 16;
  YeeGrid<double> G({NX, 4, 4}, {0, 0, 0}, {1, 1, 1});
  initWave(G, 1);
  SpectralSolver<double> S({NX, 4, 4}, {1, 1, 1}, 1.0);
  const double Dt = 25.0;
  S.step(G, Dt);
  const double K = 2 * constants::Pi / double(NX);
  for (Index I = 0; I < NX; ++I)
    EXPECT_NEAR(G.Ey(I, 0, 0), std::sin(K * (double(I) - Dt)), 1e-9);
}

TEST(SpectralSolverTest, EnergyConservedToRoundoff) {
  YeeGrid<double> G({16, 4, 4}, {0, 0, 0}, {1, 1, 1});
  initWave(G, 3);
  const double E0 = G.fieldEnergy();
  SpectralSolver<double> S({16, 4, 4}, {1, 1, 1}, 1.0);
  for (int T = 0; T < 50; ++T)
    S.step(G, 0.4);
  EXPECT_NEAR(G.fieldEnergy() / E0, 1.0, 1e-10);
}

TEST(SpectralSolverTest, UniformCurrentDrivesMeanEField) {
  // k = 0 mode: E' = -4 pi J exactly.
  YeeGrid<double> G({8, 4, 4}, {0, 0, 0}, {1, 1, 1});
  G.Jy.fill(0.5);
  SpectralSolver<double> S({8, 4, 4}, {1, 1, 1}, 1.0);
  const double Dt = 0.3;
  S.step(G, Dt);
  EXPECT_NEAR(G.Ey(2, 2, 2), -4 * constants::Pi * Dt * 0.5, 1e-10);
  EXPECT_NEAR(G.Ex(2, 2, 2), 0.0, 1e-12);
}

TEST(SpectralSolverTest, LongitudinalModeIntegratesExactly) {
  // A longitudinal current J_x ~ sin(k x): E_L' = -4 pi J_L with no
  // magnetic response (curl-free). B must stay zero.
  const Index NX = 8;
  YeeGrid<double> G({NX, 4, 4}, {0, 0, 0}, {1, 1, 1});
  const double K = 2 * constants::Pi / double(NX);
  for (Index I = 0; I < NX; ++I)
    for (Index J = 0; J < 4; ++J)
      for (Index K3 = 0; K3 < 4; ++K3)
        G.Jx(I, J, K3) = std::sin(K * double(I));
  SpectralSolver<double> S({NX, 4, 4}, {1, 1, 1}, 1.0);
  const double Dt = 0.25;
  S.step(G, Dt);
  for (Index I = 0; I < NX; ++I) {
    EXPECT_NEAR(G.Ex(I, 1, 1), -4 * constants::Pi * Dt * std::sin(K * I),
                1e-10);
    EXPECT_NEAR(G.Bz(I, 1, 1), 0.0, 1e-11);
    EXPECT_NEAR(G.By(I, 1, 1), 0.0, 1e-11);
  }
}

TEST(SpectralSolverTest, BeatsfdtdDispersionOnCoarseGrid) {
  // 8 points per wavelength, 200 steps: FDTD accumulates a visible phase
  // error, the spectral solver none.
  const Index NX = 8;
  const double K = 2 * constants::Pi / double(NX);
  const double Dt = 0.25;
  const int Steps = 200;

  YeeGrid<double> Spectral({NX, 4, 4}, {0, 0, 0}, {1, 1, 1});
  initWave(Spectral, 1);
  SpectralSolver<double> SSolver({NX, 4, 4}, {1, 1, 1}, 1.0);
  for (int T = 0; T < Steps; ++T)
    SSolver.step(Spectral, Dt);

  YeeGrid<double> Fdtd({NX, 4, 4}, {0, 0, 0}, {1, 1, 1});
  initWave(Fdtd, 1); // collocated init: small extra error, fine here
  FdtdSolver<double> FSolver(1.0);
  for (int T = 0; T < Steps; ++T)
    FSolver.step(Fdtd, Dt);

  double SpectralErr = 0, FdtdErr = 0;
  for (Index I = 0; I < NX; ++I) {
    double Exact = std::sin(K * (double(I) - Dt * Steps));
    SpectralErr = std::max(SpectralErr,
                           std::abs(Spectral.Ey(I, 0, 0) - Exact));
    FdtdErr = std::max(FdtdErr, std::abs(Fdtd.Ey(I, 0, 0) - Exact));
  }
  EXPECT_LT(SpectralErr, 1e-9);
  EXPECT_GT(FdtdErr, 100 * SpectralErr)
      << "FDTD dispersion must dominate on this grid";
}

TEST(SpectralPicTest, LangmuirOscillationWithSpectralSolver) {
  // The full PIC loop with the FFT-based solver: same Langmuir setup as
  // the FDTD integration test, same physics out.
  const GridSize N{16, 4, 4};
  PicOptions<double> Options;
  Options.LightVelocity = 1.0;
  Options.Solver = FieldSolverKind::Spectral;
  Options.SortEveryNSteps = 0;
  Options.TimeStep = 0.1; // beyond any FDTD concern; spectral is exact
  const Vector3<double> Step(0.5, 0.5, 0.5);
  const int PerCell = 2;
  const Index NumParticles = N.count() * PerCell;
  const double Volume = 8.0 * 2.0 * 2.0;
  const double Weight =
      Volume / (4.0 * constants::Pi * double(NumParticles));

  PicSimulation<double> Sim(N, {0, 0, 0}, Step, NumParticles,
                            ParticleTypeTable<double>::natural(), Options);
  const double V0 = 0.01;
  const double K = 2 * constants::Pi / 8.0;
  for (Index C = 0; C < N.count(); ++C) {
    Index I = C / (N.Ny * N.Nz);
    Index J = (C / N.Nz) % N.Ny;
    Index K3 = C % N.Nz;
    for (int P = 0; P < PerCell; ++P) {
      ParticleT<double> Particle;
      Particle.Position = {(double(I) + 0.25 + 0.5 * P) * Step.X,
                           (double(J) + 0.5) * Step.Y,
                           (double(K3) + 0.5) * Step.Z};
      double Vx = V0 * std::sin(K * Particle.Position.X);
      Particle.Momentum = {Vx / std::sqrt(1 - Vx * Vx), 0, 0};
      Particle.Weight = Weight;
      Sim.addParticle(Particle);
    }
  }

  // First field-energy peak at a quarter plasma period (t = pi/2).
  double PeakEnergy = 0, PeakTime = 0;
  const int Steps = int(2 * constants::Pi / Sim.timeStep());
  for (int S = 0; S < Steps; ++S) {
    Sim.step();
    if (Sim.fieldEnergy() > PeakEnergy) {
      PeakEnergy = Sim.fieldEnergy();
      PeakTime = Sim.time();
    }
  }
  ASSERT_GT(PeakEnergy, 0.0);
  EXPECT_NEAR(PeakTime, constants::Pi / 2, 0.4);
}

} // namespace
