//===-- tests/pic/BoundaryAndUnitsTest.cpp - Absorber + units ------------===//
//
// Part of the hichi-boris-dpcpp-repro project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "pic/AbsorbingBoundary.h"
#include "pic/FdtdSolver.h"
#include "support/Units.h"

#include <gtest/gtest.h>

using namespace hichi;
using namespace hichi::pic;

namespace {

//===----------------------------------------------------------------------===//
// Absorbing layer
//===----------------------------------------------------------------------===//

TEST(AbsorbingLayerTest, InteriorIsUntouched) {
  AbsorbingLayer<double> Sponge({32, 8, 8}, /*LayerCells=*/3, 0.8);
  EXPECT_DOUBLE_EQ(Sponge.factorAt(16, 32), 1.0);
  EXPECT_DOUBLE_EQ(Sponge.factorAt(3, 32), 1.0) << "inner edge inclusive";
  EXPECT_LT(Sponge.factorAt(2, 32), 1.0);
  EXPECT_LT(Sponge.factorAt(0, 32), Sponge.factorAt(2, 32))
      << "damping ramps toward the face";
}

TEST(AbsorbingLayerTest, SymmetricAboutBoxCenter) {
  AbsorbingLayer<double> Sponge({16, 8, 8}, 4, 1.0);
  for (Index I = 0; I < 16; ++I)
    EXPECT_DOUBLE_EQ(Sponge.factorAt(I, 16), Sponge.factorAt(15 - I, 16));
}

TEST(AbsorbingLayerTest, DampsOutgoingWaveBelowReflectionBudget) {
  // Launch a rightward pulse, let it hit the sponge, and require the
  // recirculated (periodic wrap) energy to be under 2% of the initial.
  const Index NX = 64;
  YeeGrid<double> G({NX, 2, 2}, {0, 0, 0}, {1, 1, 1});
  // A localized Gaussian pulse centred mid-box, travelling +x.
  for (Index I = 0; I < NX; ++I) {
    double X = double(I) - 32.0;
    double Envelope = std::exp(-X * X / 18.0);
    for (Index J = 0; J < 2; ++J)
      for (Index K = 0; K < 2; ++K) {
        G.Ey(I, J, K) = Envelope * std::sin(0.8 * X);
        G.Bz(I, J, K) = Envelope * std::sin(0.8 * (X + 0.5));
      }
  }
  const double E0 = G.fieldEnergy();

  FdtdSolver<double> Solver(1.0);
  AbsorbingLayer<double> Sponge({NX, 2, 2}, 10, 0.35);
  const double Dt = 0.5 * Solver.courantLimit(G);
  // Long enough for the pulse to reach the right sponge and for any
  // reflection to come back into the interior.
  for (int S = 0; S < 260; ++S) {
    Solver.step(G, Dt);
    Sponge.apply(G);
  }
  EXPECT_LT(G.fieldEnergy() / E0, 0.02)
      << "sponge must swallow the outgoing pulse";
}

TEST(AbsorbingLayerTest, ParticleOpenBoundary) {
  YeeGrid<double> G({16, 16, 16}, {0, 0, 0}, {1, 1, 1});
  AbsorbingLayer<double> Sponge({16, 16, 16}, 2, 0.5);
  ParticleArrayAoS<double> P(10);
  for (int I = 0; I < 10; ++I) {
    ParticleT<double> Particle;
    // Half deep inside, half in the frame.
    Particle.Position = I < 5 ? Vector3<double>(8, 8, 8)
                              : Vector3<double>(0.5, 8, 8);
    P.pushBack(Particle);
  }
  EXPECT_FALSE(Sponge.inLayer(G, {8, 8, 8}));
  EXPECT_TRUE(Sponge.inLayer(G, {0.5, 8, 8}));
  EXPECT_TRUE(Sponge.inLayer(G, {8, 15.5, 8}));
  EXPECT_EQ(Sponge.removeAbsorbedParticles(P, G), 5);
  EXPECT_EQ(P.size(), 5);
}

//===----------------------------------------------------------------------===//
// Units
//===----------------------------------------------------------------------===//

TEST(UnitsTest, ElectronRestEnergyIs511keV) {
  EXPECT_NEAR(units::ergToEv(units::electronRestEnergy()) / 1e3, 511.0, 1.0);
}

TEST(UnitsTest, GammaToMev) {
  EXPECT_NEAR(units::gammaToMev(1.0), 0.0, 1e-12);
  EXPECT_NEAR(units::gammaToMev(3.0), 2 * 0.511, 0.01);
}

TEST(UnitsTest, CriticalDensityAtMicron) {
  // n_c ~ 1.1e21 cm^-3 / (lambda/um)^2; at 1 um: ~1.1e21.
  EXPECT_NEAR(units::criticalDensity(1e-4) / 1e21, 1.1, 0.1);
}

TEST(UnitsTest, PlasmaFrequencyInvertsCriticalDensity) {
  double Lambda = 0.9e-4; // the paper's wavelength
  double Nc = units::criticalDensity(Lambda);
  double Omega = units::plasmaFrequency(Nc);
  EXPECT_NEAR(Omega / (2 * constants::Pi * constants::LightVelocity / Lambda),
              1.0, 1e-9);
}

TEST(UnitsTest, A0EngineeringFormula) {
  // a0 ~ 0.85 at 1e18 W/cm^2, lambda = 1 um (linear polarization).
  EXPECT_NEAR(units::intensityToA0(1e18, 1e-4), 0.85, 0.03);
  // Scales as sqrt(I).
  EXPECT_NEAR(units::intensityToA0(4e18, 1e-4) /
                  units::intensityToA0(1e18, 1e-4),
              2.0, 1e-9);
}

TEST(UnitsTest, PaperBenchmarkIsRelativistic) {
  // P = 0.1 PW focused to ~lambda: intensity ~1e21 W/cm^2 -> a0 >> 1,
  // consistent with the paper placing the benchmark in the relativistic
  // window (gamma up to ~140 in the escape example).
  double Lambda = 0.9e-4;
  double Intensity = units::powerToIntensity(1e14, Lambda);
  EXPECT_GT(units::intensityToA0(Intensity, Lambda), 10.0);
}

} // namespace
