//===-- tests/pic/TiledDepositionTest.cpp - Parallel deposition ----------===//
//
// Part of the hichi-boris-dpcpp-repro project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel-deposition guarantees. The decisive one: the tiled,
/// backend-parallel current scatter (TiledCurrentAccumulator) is
/// *bit-identical* to the serial particle-order scatter — for every
/// registered backend, both particle layouts, both deposition schemes and
/// any tile count — because every J node is owned by exactly one tile and
/// folded in global particle order (the determinism argument in
/// docs/ARCHITECTURE.md). On top sit the PIC-level checks: cross-backend
/// state-hash equivalence of whole simulations and the discrete
/// continuity equation d(rho)/dt + div J = 0 under a parallel deposit.
///
//===----------------------------------------------------------------------===//

#include "exec/BackendRegistry.h"
#include "minisycl/minisycl.h"
#include "pic/Diagnostics.h"
#include "pic/PicSimulation.h"
#include "pic/TiledCurrentAccumulator.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

using namespace hichi;
using namespace hichi::pic;

namespace {

//===----------------------------------------------------------------------===//
// Accumulator-level bitwise equivalence against the serial scatter
//===----------------------------------------------------------------------===//

/// A random ensemble of sub-cell moves spanning the whole periodic box
/// (including edge positions whose stencils wrap).
template <typename Array>
void fillMoves(Array &Particles, std::vector<Vector3<double>> &OldPos,
               std::vector<Vector3<double>> &NewPos, const YeeGrid<double> &G,
               Index N, unsigned Seed) {
  RandomStream<double> Rng(Seed);
  const Vector3<double> O = G.origin(), D = G.step();
  const GridSize Size = G.size();
  for (Index I = 0; I < N; ++I) {
    const Vector3<double> From(
        O.X + Rng.uniform(0.0, double(Size.Nx)) * D.X,
        O.Y + Rng.uniform(0.0, double(Size.Ny)) * D.Y,
        O.Z + Rng.uniform(0.0, double(Size.Nz)) * D.Z);
    const Vector3<double> To(From.X + Rng.uniform(-0.45, 0.45) * D.X,
                             From.Y + Rng.uniform(-0.45, 0.45) * D.Y,
                             From.Z + Rng.uniform(-0.45, 0.45) * D.Z);
    ParticleT<double> P;
    P.Position = To;
    P.Weight = Rng.uniform(0.5, 2.0);
    P.Type = PS_Electron;
    Particles.pushBack(P);
    OldPos.push_back(From);
    NewPos.push_back(To);
  }
}

/// Bitwise lattice comparison (memcmp, stricter than operator==).
void expectBitwiseEqual(const ScalarLattice<double> &A,
                        const ScalarLattice<double> &B, const char *What) {
  ASSERT_EQ(A.raw().size(), B.raw().size());
  EXPECT_EQ(std::memcmp(A.raw().data(), B.raw().data(),
                        A.raw().size() * sizeof(double)),
            0)
      << What;
}

template <typename Array>
void checkAccumulatorAgainstSerial(bool ChargeConserving) {
  const GridSize Size{8, 5, 6};
  const Vector3<double> Origin(-2.0, 1.0, 0.0), Step(0.5, 1.0, 0.8);
  const Index N = 400;
  const double Dt = 0.31;

  Array Particles(N);
  std::vector<Vector3<double>> OldPos, NewPos;
  YeeGrid<double> Probe(Size, Origin, Step); // geometry donor for fillMoves
  fillMoves(Particles, OldPos, NewPos, Probe, N, 17);
  auto Types = ParticleTypeTable<double>::natural();
  auto View = Particles.view();

  // Serial reference: the classic particle-order scatter.
  YeeGrid<double> Ref(Size, Origin, Step);
  for (Index I = 0; I < N; ++I) {
    const double Q = Types[View[I].type()].Charge * View[I].weight();
    if (ChargeConserving) {
      depositCurrentEsirkepov(Ref, OldPos[I], NewPos[I], Q, Dt);
    } else {
      depositCurrentDirect(Ref, (OldPos[I] + NewPos[I]) * 0.5,
                           (NewPos[I] - OldPos[I]) / Dt, Q);
    }
  }

  minisycl::queue Queue{minisycl::cpu_device()};
  for (const std::string &Name : exec::BackendRegistry::instance().names()) {
    auto Backend = exec::createBackend(Name);
    ASSERT_NE(Backend, nullptr) << Name;
    exec::ExecutionContext Ctx;
    Ctx.Queue = &Queue;
    for (int Tiles : {1, 2, 3, 5, 8, 64}) {
      TiledCurrentAccumulator<double> Accumulator(Size, Origin, Step, Tiles);
      YeeGrid<double> G(Size, Origin, Step);
      RunStats Stats;
      Accumulator.deposit(G, View, OldPos.data(), NewPos.data(), Types.data(),
                          Dt, ChargeConserving, *Backend, Ctx, Stats);
      SCOPED_TRACE("backend=" + Name + " tiles=" +
                   std::to_string(Accumulator.tileCount()));
      expectBitwiseEqual(G.Jx, Ref.Jx, "Jx");
      expectBitwiseEqual(G.Jy, Ref.Jy, "Jy");
      expectBitwiseEqual(G.Jz, Ref.Jz, "Jz");
    }
  }
}

TEST(TiledDepositionTest, EsirkepovBitwiseMatchesSerialAoS) {
  checkAccumulatorAgainstSerial<ParticleArrayAoS<double>>(true);
}

TEST(TiledDepositionTest, EsirkepovBitwiseMatchesSerialSoA) {
  checkAccumulatorAgainstSerial<ParticleArraySoA<double>>(true);
}

TEST(TiledDepositionTest, DirectSchemeBitwiseMatchesSerialAoS) {
  checkAccumulatorAgainstSerial<ParticleArrayAoS<double>>(false);
}

TEST(TiledDepositionTest, DirectSchemeBitwiseMatchesSerialSoA) {
  checkAccumulatorAgainstSerial<ParticleArraySoA<double>>(false);
}

TEST(TiledDepositionTest, TileCountClampsToPlaneCount) {
  TiledCurrentAccumulator<double> A({8, 4, 4}, {0, 0, 0}, {1, 1, 1}, 100);
  EXPECT_EQ(A.tileCount(), 8);
  TiledCurrentAccumulator<double> B({8, 4, 4}, {0, 0, 0}, {1, 1, 1}, 0);
  EXPECT_EQ(B.tileCount(), 1);
}

//===----------------------------------------------------------------------===//
// Simulation-level cross-backend state-hash equivalence
//===----------------------------------------------------------------------===//

/// A small Langmuir-style simulation advanced \p Steps steps, with the
/// deposit stage configured as requested; \returns the full state hash.
template <typename Array>
std::uint64_t simulationHash(const std::string &DepositBackend, int Tiles,
                             int Threads, bool ChargeConserving, int Steps) {
  const GridSize N{12, 4, 4};
  PicOptions<double> Options;
  Options.LightVelocity = 1.0;
  Options.SortEveryNSteps = 7; // exercise re-sorting mid-run
  Options.ChargeConserving = ChargeConserving;
  Options.DepositBackend = DepositBackend;
  Options.DepositTiles = Tiles;
  Options.DepositThreads = Threads;
  const int PerCell = 2;
  PicSimulation<double, Array> Sim(N, {0, 0, 0}, {0.5, 0.5, 0.5},
                                   N.count() * PerCell,
                                   ParticleTypeTable<double>::natural(),
                                   Options);
  for (Index C = 0; C < N.count(); ++C) {
    const Index I = C / (N.Ny * N.Nz);
    const Index J = (C / N.Nz) % N.Ny;
    const Index K = C % N.Nz;
    for (int P = 0; P < PerCell; ++P) {
      ParticleT<double> Particle;
      Particle.Position = {(double(I) + 0.25 + 0.5 * P) * 0.5,
                           (double(J) + 0.5) * 0.5, (double(K) + 0.5) * 0.5};
      const double Vx =
          0.02 * std::sin(2.0 * constants::Pi * Particle.Position.X / 6.0);
      Particle.Momentum = {Vx / std::sqrt(1 - Vx * Vx), 0, 0};
      Particle.Weight = 0.05;
      Particle.Type = PS_Electron;
      Sim.addParticle(Particle);
    }
  }
  Sim.run(Steps);
  return picStateHash(Sim.particles(), Sim.grid());
}

TEST(TiledDepositionTest, SimulationHashInvariantAcrossBackendsAndTiles) {
  const std::uint64_t Reference =
      simulationHash<ParticleArrayAoS<double>>("serial", 1, 0, true, 30);
  for (const std::string &Name : exec::BackendRegistry::instance().names())
    for (int Tiles : {1, 3, 5, 12})
      EXPECT_EQ(simulationHash<ParticleArrayAoS<double>>(Name, Tiles, 0, true,
                                                         30),
                Reference)
          << "backend=" << Name << " tiles=" << Tiles;
  // Pinned worker counts must not change the result either.
  EXPECT_EQ(simulationHash<ParticleArrayAoS<double>>("openmp", 5, 2, true, 30),
            Reference);
  EXPECT_EQ(simulationHash<ParticleArrayAoS<double>>("dpcpp", 5, 3, true, 30),
            Reference);
  // Shard axis: the sharded backend splits the deposit into per-shard
  // accumulate→reduce chains (threads = shard count); every shard count
  // must reproduce the same bits — including 13 shards over 5 tiles.
  for (int Shards : {1, 2, 5, 13})
    EXPECT_EQ(simulationHash<ParticleArrayAoS<double>>("sharded", 5, Shards,
                                                       true, 30),
              Reference)
        << "shards=" << Shards;
}

TEST(TiledDepositionTest, SimulationHashInvariantForSoALayout) {
  const std::uint64_t Reference =
      simulationHash<ParticleArraySoA<double>>("serial", 1, 0, true, 25);
  for (const std::string &Name : exec::BackendRegistry::instance().names())
    EXPECT_EQ(simulationHash<ParticleArraySoA<double>>(Name, 4, 0, true, 25),
              Reference)
        << "backend=" << Name;
}

TEST(TiledDepositionTest, SimulationHashInvariantForDirectScheme) {
  const std::uint64_t Reference =
      simulationHash<ParticleArrayAoS<double>>("serial", 1, 0, false, 20);
  for (const std::string &Name : exec::BackendRegistry::instance().names())
    EXPECT_EQ(simulationHash<ParticleArrayAoS<double>>(Name, 5, 0, false, 20),
              Reference)
        << "backend=" << Name;
}

/// Like simulationHash, but configures the *push* stage: asynchronous
/// push backends run stage 1 as the double-buffered precalc/push
/// pipeline (PicSimulation.h), which must reproduce the fused serial
/// stage bit-for-bit for every lane count x chunk count x deposit
/// configuration.
template <typename Array>
std::uint64_t pipelineSimulationHash(const std::string &PushBackend,
                                     int Lanes, int Chunks,
                                     const std::string &DepositBackend,
                                     int Tiles, int Steps) {
  const GridSize N{12, 4, 4};
  PicOptions<double> Options;
  Options.LightVelocity = 1.0;
  Options.SortEveryNSteps = 7;
  Options.PushBackend = PushBackend;
  Options.PushThreads = Lanes;
  Options.PushPipelineChunks = Chunks;
  Options.DepositBackend = DepositBackend;
  Options.DepositTiles = Tiles;
  const int PerCell = 2;
  PicSimulation<double, Array> Sim(N, {0, 0, 0}, {0.5, 0.5, 0.5},
                                   N.count() * PerCell,
                                   ParticleTypeTable<double>::natural(),
                                   Options);
  for (Index C = 0; C < N.count(); ++C) {
    const Index I = C / (N.Ny * N.Nz);
    const Index J = (C / N.Nz) % N.Ny;
    const Index K = C % N.Nz;
    for (int P = 0; P < PerCell; ++P) {
      ParticleT<double> Particle;
      Particle.Position = {(double(I) + 0.25 + 0.5 * P) * 0.5,
                           (double(J) + 0.5) * 0.5, (double(K) + 0.5) * 0.5};
      const double Vx =
          0.02 * std::sin(2.0 * constants::Pi * Particle.Position.X / 6.0);
      Particle.Momentum = {Vx / std::sqrt(1 - Vx * Vx), 0, 0};
      Particle.Weight = 0.05;
      Particle.Type = PS_Electron;
      Sim.addParticle(Particle);
    }
  }
  Sim.run(Steps);
  return picStateHash(Sim.particles(), Sim.grid());
}

TEST(TiledDepositionTest, SimulationHashInvariantForAsyncPushPipeline) {
  const std::uint64_t Reference = pipelineSimulationHash<
      ParticleArrayAoS<double>>("serial", 0, 0, "serial", 1, 30);
  for (int Lanes : {1, 2, 4})
    for (int Chunks : {0, 1, 3, 8})
      EXPECT_EQ(pipelineSimulationHash<ParticleArrayAoS<double>>(
                    "async-pipeline", Lanes, Chunks, "serial", 1, 30),
                Reference)
          << "lanes=" << Lanes << " chunks=" << Chunks;
  // Async push combined with parallel tiled deposition — the full
  // pipelined loop against the all-serial reference.
  EXPECT_EQ(pipelineSimulationHash<ParticleArrayAoS<double>>(
                "async-pipeline", 2, 0, "openmp", 5, 30),
            Reference);
  EXPECT_EQ(pipelineSimulationHash<ParticleArrayAoS<double>>(
                "async-pipeline", 2, 4, "async-pipeline", 3, 30),
            Reference);
}

TEST(TiledDepositionTest, SimulationHashInvariantForAsyncPushPipelineSoA) {
  const std::uint64_t Reference = pipelineSimulationHash<
      ParticleArraySoA<double>>("serial", 0, 0, "serial", 1, 25);
  for (int Chunks : {0, 5})
    EXPECT_EQ(pipelineSimulationHash<ParticleArraySoA<double>>(
                  "async-pipeline", 2, Chunks, "dpcpp", 4, 25),
              Reference)
        << "chunks=" << Chunks;
}

//===----------------------------------------------------------------------===//
// Simulation-level state-hash equivalence across *field* backends
//===----------------------------------------------------------------------===//

/// Like simulationHash, but configures the Maxwell field-solve stage
/// (and optionally the other two) on a power-of-two grid so both the
/// FDTD and the spectral solver run the same setup. The x-slab-tiled,
/// halo-exchanged FDTD launches and the k-space-parallel spectral
/// launches must reproduce the all-serial loop bit-for-bit for every
/// backend x tile count — including asynchronous field backends, where
/// the solve event-chains against the deposit reduction.
template <typename Array>
std::uint64_t fieldSimulationHash(FieldSolverKind Solver,
                                  const std::string &FieldBackend,
                                  int FieldTiles, int FieldThreads, int Steps,
                                  const std::string &PushBackend = "serial",
                                  const std::string &DepositBackend = "serial",
                                  int DepositTiles = 1) {
  const GridSize N{16, 4, 4};
  PicOptions<double> Options;
  Options.LightVelocity = 1.0;
  Options.SortEveryNSteps = 7;
  Options.Solver = Solver;
  Options.PushBackend = PushBackend;
  Options.DepositBackend = DepositBackend;
  Options.DepositTiles = DepositTiles;
  Options.FieldBackend = FieldBackend;
  Options.FieldTiles = FieldTiles;
  Options.FieldThreads = FieldThreads;
  const int PerCell = 2;
  PicSimulation<double, Array> Sim(N, {0, 0, 0}, {0.5, 0.5, 0.5},
                                   N.count() * PerCell,
                                   ParticleTypeTable<double>::natural(),
                                   Options);
  for (Index C = 0; C < N.count(); ++C) {
    const Index I = C / (N.Ny * N.Nz);
    const Index J = (C / N.Nz) % N.Ny;
    const Index K = C % N.Nz;
    for (int P = 0; P < PerCell; ++P) {
      ParticleT<double> Particle;
      Particle.Position = {(double(I) + 0.25 + 0.5 * P) * 0.5,
                           (double(J) + 0.5) * 0.5, (double(K) + 0.5) * 0.5};
      const double Vx =
          0.02 * std::sin(2.0 * constants::Pi * Particle.Position.X / 8.0);
      Particle.Momentum = {Vx / std::sqrt(1 - Vx * Vx), 0, 0};
      Particle.Weight = 0.05;
      Particle.Type = PS_Electron;
      Sim.addParticle(Particle);
    }
  }
  Sim.run(Steps);
  return picStateHash(Sim.particles(), Sim.grid());
}

TEST(TiledDepositionTest, SimulationHashInvariantAcrossFieldBackendsFdtd) {
  const std::uint64_t Reference = fieldSimulationHash<ParticleArrayAoS<double>>(
      FieldSolverKind::Fdtd, "serial", 1, 0, 100);
  for (const std::string &Name : exec::BackendRegistry::instance().names())
    for (int Tiles : {1, 4, 7})
      EXPECT_EQ(fieldSimulationHash<ParticleArrayAoS<double>>(
                    FieldSolverKind::Fdtd, Name, Tiles, 0, 100),
                Reference)
          << "field backend=" << Name << " tiles=" << Tiles;
  // Pinned worker counts must not change the result either.
  EXPECT_EQ(fieldSimulationHash<ParticleArrayAoS<double>>(
                FieldSolverKind::Fdtd, "openmp", 7, 2, 100),
            Reference);
}

TEST(TiledDepositionTest, SimulationHashInvariantAcrossFieldBackendsSpectral) {
  const std::uint64_t Reference = fieldSimulationHash<ParticleArrayAoS<double>>(
      FieldSolverKind::Spectral, "serial", 1, 0, 100);
  for (const std::string &Name : exec::BackendRegistry::instance().names())
    for (int Tiles : {1, 4, 7})
      EXPECT_EQ(fieldSimulationHash<ParticleArrayAoS<double>>(
                    FieldSolverKind::Spectral, Name, Tiles, 0, 100),
                Reference)
          << "field backend=" << Name << " tiles=" << Tiles;
}

TEST(TiledDepositionTest, SimulationHashInvariantAcrossFieldBackendsSoA) {
  const std::uint64_t Reference = fieldSimulationHash<ParticleArraySoA<double>>(
      FieldSolverKind::Fdtd, "serial", 1, 0, 100);
  for (const std::string &Name : exec::BackendRegistry::instance().names())
    EXPECT_EQ(fieldSimulationHash<ParticleArraySoA<double>>(
                  FieldSolverKind::Fdtd, Name, 4, 0, 100),
              Reference)
        << "field backend=" << Name;
}

TEST(TiledDepositionTest, SimulationHashInvariantForAsyncFieldChain) {
  // The asynchronous field path: the solve's launches event-chain
  // against the deposit reduction (the first FDTD half-step may overlap
  // it) — and the bits still cannot move, for any lane count x tile
  // count x solver, including the fully asynchronous loop where all
  // three stages run on async-pipeline backends.
  for (FieldSolverKind Solver :
       {FieldSolverKind::Fdtd, FieldSolverKind::Spectral}) {
    const std::uint64_t Reference =
        fieldSimulationHash<ParticleArrayAoS<double>>(Solver, "serial", 1, 0,
                                                      100);
    for (int Lanes : {1, 2})
      for (int Tiles : {1, 4, 7})
        EXPECT_EQ(fieldSimulationHash<ParticleArrayAoS<double>>(
                      Solver, "async-pipeline", Tiles, Lanes, 100),
                  Reference)
            << "lanes=" << Lanes << " tiles=" << Tiles;
    // Async field + parallel tiled deposit on another backend.
    EXPECT_EQ(fieldSimulationHash<ParticleArrayAoS<double>>(
                  Solver, "async-pipeline", 4, 2, 100, "serial", "openmp", 5),
              Reference);
    // The fully asynchronous five-stage loop vs the all-serial one.
    EXPECT_EQ(fieldSimulationHash<ParticleArrayAoS<double>>(
                  Solver, "async-pipeline", 4, 2, 100, "async-pipeline",
                  "async-pipeline", 3),
              Reference);
  }
}

//===----------------------------------------------------------------------===//
// Discrete continuity under a parallel tiled deposit
//===----------------------------------------------------------------------===//

TEST(TiledDepositionTest, ContinuityHoldsUnderParallelDeposit) {
  // The Esirkepov property test extended to the full PIC step with a
  // multi-tile, multi-threaded deposit: (rho^{n+1} - rho^n)/dt + div J
  // must still vanish at every node, which it can only do if the tiles
  // jointly reproduce the exact serial scatter.
  const GridSize N{8, 6, 4};
  PicOptions<double> Options;
  Options.LightVelocity = 1.0;
  Options.SortEveryNSteps = 0;
  Options.DepositBackend = "openmp";
  Options.DepositTiles = 5;
  PicSimulation<double> Sim(N, {0, 0, 0}, {0.5, 0.5, 0.5}, 256,
                            ParticleTypeTable<double>::natural(), Options);
  RandomStream<double> Rng(23);
  for (int P = 0; P < 128; ++P) {
    ParticleT<double> Particle;
    Particle.Position = {Rng.uniform(0.0, 4.0), Rng.uniform(0.0, 3.0),
                         Rng.uniform(0.0, 2.0)};
    Particle.Momentum = {Rng.uniform(-0.4, 0.4), Rng.uniform(-0.4, 0.4),
                         Rng.uniform(-0.4, 0.4)};
    Particle.Weight = Rng.uniform(0.5, 1.5);
    Particle.Type = P % 2 == 0 ? PS_Electron : PS_Positron;
    Sim.addParticle(Particle);
  }

  const double Dt = Sim.timeStep();
  ScalarLattice<double> RhoOld(N), RhoNew(N);
  for (int Step = 0; Step < 5; ++Step) {
    Sim.depositCharge(RhoOld);
    Sim.step();
    Sim.depositCharge(RhoNew);
    const YeeGrid<double> &G = Sim.grid();
    for (Index I = 0; I < N.Nx; ++I)
      for (Index J = 0; J < N.Ny; ++J)
        for (Index K = 0; K < N.Nz; ++K) {
          const double DivJ =
              (G.Jx(I, J, K) - G.Jx(I - 1, J, K)) / G.step().X +
              (G.Jy(I, J, K) - G.Jy(I, J - 1, K)) / G.step().Y +
              (G.Jz(I, J, K) - G.Jz(I, J, K - 1)) / G.step().Z;
          const double DRhoDt = (RhoNew(I, J, K) - RhoOld(I, J, K)) / Dt;
          ASSERT_NEAR(DRhoDt + DivJ, 0.0, 1e-10)
              << "step " << Step << " node " << I << "," << J << "," << K;
        }
  }
}

} // namespace
