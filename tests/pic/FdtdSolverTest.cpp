//===-- tests/pic/FdtdSolverTest.cpp - FDTD Maxwell solver tests ---------===//
//
// Part of the hichi-boris-dpcpp-repro project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Direct unit coverage of the FDTD solver (previously tested only
/// through the PIC integration suites): the Courant limit, the *known*
/// numerical dispersion relation sin(w dt/2) = (c dt/dx) sin(k dx/2) for
/// plane waves, bounded-energy (non-dissipative) long-time behaviour —
/// and the decisive parallelization guarantee: the x-slab-tiled,
/// halo-exchanged, backend-launched step (FdtdSolver::step over an
/// FdtdSlabPartition, and the spectral solver's k-space launches) is
/// *bitwise* identical to the serial solver for every registered
/// backend and tile count.
///
//===----------------------------------------------------------------------===//

#include "exec/BackendRegistry.h"
#include "exec/SlabPartition.h"
#include "minisycl/minisycl.h"
#include "pic/FdtdSolver.h"
#include "pic/SpectralSolver.h"
#include "pic/TiledCurrentAccumulator.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <complex>
#include <cstring>
#include <string>
#include <vector>

using namespace hichi;
using namespace hichi::pic;

namespace {

/// Fills one lattice with reproducible uniform noise in [-1, 1].
void fillRandom(ScalarLattice<double> &L, RandomStream<double> &Rng) {
  for (double &V : L.raw())
    V = Rng.uniform(-1.0, 1.0);
}

/// A grid whose nine lattices are all non-trivial (E, B and J), so every
/// curl term and the current term exercise real data.
YeeGrid<double> randomGrid(GridSize Size, Vector3<double> Origin,
                           Vector3<double> Step, unsigned Seed) {
  YeeGrid<double> G(Size, Origin, Step);
  RandomStream<double> Rng(Seed);
  for (ScalarLattice<double> *L :
       {&G.Ex, &G.Ey, &G.Ez, &G.Bx, &G.By, &G.Bz, &G.Jx, &G.Jy, &G.Jz})
    fillRandom(*L, Rng);
  return G;
}

/// Bitwise lattice comparison (memcmp, stricter than operator==).
void expectBitwiseEqual(const ScalarLattice<double> &A,
                        const ScalarLattice<double> &B, const char *What) {
  ASSERT_EQ(A.raw().size(), B.raw().size());
  EXPECT_EQ(std::memcmp(A.raw().data(), B.raw().data(),
                        A.raw().size() * sizeof(double)),
            0)
      << What;
}

void expectFieldsBitwiseEqual(const YeeGrid<double> &A,
                              const YeeGrid<double> &B) {
  expectBitwiseEqual(A.Ex, B.Ex, "Ex");
  expectBitwiseEqual(A.Ey, B.Ey, "Ey");
  expectBitwiseEqual(A.Ez, B.Ez, "Ez");
  expectBitwiseEqual(A.Bx, B.Bx, "Bx");
  expectBitwiseEqual(A.By, B.By, "By");
  expectBitwiseEqual(A.Bz, B.Bz, "Bz");
}

TEST(FdtdSolverTest, CourantLimitMatchesClosedForm) {
  FdtdSolver<double> S(2.0);
  YeeGrid<double> G({4, 4, 4}, {0, 0, 0}, {0.5, 1.0, 2.0});
  const double Inv2 = 1.0 / 0.25 + 1.0 / 1.0 + 1.0 / 4.0;
  EXPECT_NEAR(S.courantLimit(G), 1.0 / (2.0 * std::sqrt(Inv2)), 1e-14);
}

TEST(FdtdSolverTest, PlaneWaveDispersionMatchesYeeTheory) {
  // A mode-2 plane wave along x, tracked through the complex Fourier
  // coefficient of Ey: its phase must advance at the Yee scheme's
  // numerical frequency sin(w dt/2) = (c dt/dx) sin(k dx/2), which on
  // this coarse grid differs measurably from the exact w = c k — the
  // solver must show the *right* dispersion error, not none and not an
  // arbitrary one.
  const Index NX = 16;
  const double K = 2.0 * constants::Pi * 2.0 / double(NX);
  const double Dt = 0.25;
  const int Steps = 400;
  YeeGrid<double> G({NX, 4, 4}, {0, 0, 0}, {1, 1, 1});
  for (Index I = 0; I < NX; ++I)
    for (Index J = 0; J < 4; ++J)
      for (Index K3 = 0; K3 < 4; ++K3) {
        G.Ey(I, J, K3) = std::sin(K * double(I));
        G.Bz(I, J, K3) = std::sin(K * double(I));
      }
  FdtdSolver<double> S(1.0);

  auto FourierPhase = [&]() {
    std::complex<double> C(0, 0);
    for (Index I = 0; I < NX; ++I)
      C += G.Ey(I, 0, 0) *
           std::exp(std::complex<double>(0, -K * double(I)));
    return std::arg(C);
  };

  // Accumulate the unwrapped phase advance over the run; per-step
  // deltas are ~0.19 rad, far from the wrap boundary, and the small
  // counter-propagating admixture of the collocated initialization
  // averages out over 400 steps.
  double Advance = 0;
  double Prev = FourierPhase();
  for (int T = 0; T < Steps; ++T) {
    S.step(G, Dt);
    const double Phase = FourierPhase();
    double Delta = Phase - Prev;
    while (Delta > constants::Pi)
      Delta -= 2.0 * constants::Pi;
    while (Delta < -constants::Pi)
      Delta += 2.0 * constants::Pi;
    Prev = Phase;
    Advance += Delta;
  }
  // Rightward traveller: the phase decreases by w dt per step.
  const double MeasuredOmega = -Advance / (Steps * Dt);
  const double YeeOmega =
      2.0 / Dt * std::asin(Dt * std::sin(K / 2.0)); // c = dx = 1
  const double ExactOmega = K;
  // The scheme's dispersion is real on this grid (w_yee differs from
  // c k by >1.5%), and the measured frequency must match the Yee value,
  // not the exact one.
  ASSERT_GT(std::abs(YeeOmega - ExactOmega), 0.015 * ExactOmega);
  EXPECT_NEAR(MeasuredOmega, YeeOmega, 0.01 * YeeOmega);
  EXPECT_GT(std::abs(MeasuredOmega - ExactOmega),
            std::abs(MeasuredOmega - YeeOmega));
}

TEST(FdtdSolverTest, EnergyStaysBoundedOverManySteps) {
  // The Yee leapfrog is non-dissipative: over hundreds of steps at 87%
  // of the Courant limit, the field energy of a propagating wave must
  // neither decay nor grow secularly.
  YeeGrid<double> G({16, 4, 4}, {0, 0, 0}, {1, 1, 1});
  const double K = 2.0 * constants::Pi * 3.0 / 16.0;
  for (Index I = 0; I < 16; ++I)
    for (Index J = 0; J < 4; ++J)
      for (Index K3 = 0; K3 < 4; ++K3) {
        G.Ey(I, J, K3) = std::sin(K * double(I));
        G.Bz(I, J, K3) = std::sin(K * double(I));
      }
  FdtdSolver<double> S(1.0);
  const double Dt = 0.5; // Courant limit here: 1/sqrt(3) ~ 0.577
  const double E0 = G.fieldEnergy();
  double MinE = E0, MaxE = E0;
  for (int T = 0; T < 400; ++T) {
    S.step(G, Dt);
    const double E = G.fieldEnergy();
    MinE = std::min(MinE, E);
    MaxE = std::max(MaxE, E);
  }
  EXPECT_GT(MinE / E0, 0.95);
  EXPECT_LT(MaxE / E0, 1.05);
  EXPECT_NEAR(G.fieldEnergy() / E0, 1.0, 0.05);
}

TEST(FdtdSolverTest, TiledStepBitwiseMatchesSerial) {
  // The decisive guarantee: the backend-launched x-slab step (halo
  // exchange included) equals the serial leapfrog bit for bit, for
  // every registered backend and tile count — including tiles = Nx
  // (every plane its own tile, every x-neighbour read through a halo).
  const GridSize Size{8, 5, 6};
  const Vector3<double> Origin(-2.0, 1.0, 0.0), Step(0.5, 1.0, 0.8);
  const double Dt = 0.2; // well under the Courant limit for these steps
  const int Steps = 3;

  const YeeGrid<double> Initial = randomGrid(Size, Origin, Step, 99);
  FdtdSolver<double> Solver(1.0);
  YeeGrid<double> Ref = Initial;
  for (int T = 0; T < Steps; ++T)
    Solver.step(Ref, Dt);

  minisycl::queue Queue{minisycl::cpu_device()};
  for (const std::string &Name : exec::BackendRegistry::instance().names()) {
    auto Backend = exec::createBackend(Name);
    ASSERT_NE(Backend, nullptr) << Name;
    exec::ExecutionContext Ctx;
    Ctx.Queue = &Queue;
    for (int Tiles : {1, 2, 3, 5, 8, 64}) {
      FdtdSlabPartition<double> Partition(Size, Tiles);
      YeeGrid<double> G = Initial;
      RunStats Stats;
      for (int T = 0; T < Steps; ++T)
        Solver.step(G, Dt, Partition, *Backend, Ctx, Stats);
      SCOPED_TRACE("backend=" + Name + " tiles=" +
                   std::to_string(Partition.tileCount()));
      expectFieldsBitwiseEqual(G, Ref);
    }
  }

  // Shard axis: the sharded backend partitions the slab launches across
  // its persistent lanes (threads = shard count); every shard count x
  // tile count must still produce the serial bits.
  for (int Shards : {1, 2, 5, 13}) {
    auto Backend = exec::createBackend("sharded", {Shards, 0});
    ASSERT_NE(Backend, nullptr);
    exec::ExecutionContext Ctx;
    for (int Tiles : {1, 3, 8, 64}) {
      FdtdSlabPartition<double> Partition(Size, Tiles);
      YeeGrid<double> G = Initial;
      RunStats Stats;
      for (int T = 0; T < Steps; ++T)
        Solver.step(G, Dt, Partition, *Backend, Ctx, Stats);
      SCOPED_TRACE("shards=" + std::to_string(Shards) + " tiles=" +
                   std::to_string(Partition.tileCount()));
      expectFieldsBitwiseEqual(G, Ref);
    }
  }
}

TEST(FdtdSolverTest, SpectralTiledStepBitwiseMatchesSerial) {
  // Same guarantee for the spectral solver: the event-chained k-space
  // launch graph (gather → per-line FFT passes → mode update → inverse
  // → scatter) equals the serial step bit for bit for every backend and
  // chunk count.
  const GridSize Size{8, 4, 4};
  const Vector3<double> Origin(0, 0, 0), Step(1, 1, 1);
  const double Dt = 0.4;
  const int Steps = 3;

  const YeeGrid<double> Initial = randomGrid(Size, Origin, Step, 1234);
  SpectralSolver<double> Serial(Size, Step, 1.0);
  YeeGrid<double> Ref = Initial;
  for (int T = 0; T < Steps; ++T)
    Serial.step(Ref, Dt);

  minisycl::queue Queue{minisycl::cpu_device()};
  for (const std::string &Name : exec::BackendRegistry::instance().names()) {
    auto Backend = exec::createBackend(Name);
    ASSERT_NE(Backend, nullptr) << Name;
    exec::ExecutionContext Ctx;
    Ctx.Queue = &Queue;
    for (int Tiles : {1, 2, 3, 7, 16}) {
      SpectralSolver<double> Par(Size, Step, 1.0);
      YeeGrid<double> G = Initial;
      RunStats Stats;
      for (int T = 0; T < Steps; ++T)
        Par.step(G, Dt, *Backend, Ctx, Tiles, Stats);
      SCOPED_TRACE("backend=" + Name + " tiles=" + std::to_string(Tiles));
      expectFieldsBitwiseEqual(G, Ref);
    }
  }
}

TEST(FdtdSolverTest, SlabPartitionClampsAndCovers) {
  FdtdSlabPartition<double> A({8, 4, 4}, 100);
  EXPECT_EQ(A.tileCount(), 8);
  FdtdSlabPartition<double> B({8, 4, 4}, 0);
  EXPECT_EQ(B.tileCount(), 1);
  FdtdSlabPartition<double> C({7, 4, 4}, 3);
  EXPECT_EQ(C.tileCount(), 3);
  Index Covered = 0;
  for (Index T = 0; T < 3; ++T) {
    EXPECT_EQ(C.tile(T).PlaneBegin, Covered);
    Covered = C.tile(T).PlaneEnd;
  }
  EXPECT_EQ(Covered, 7);
}

TEST(FdtdSolverTest, SlabPartitionDegenerateRequestsMatchDepositTiles) {
  // The degenerate clamp cases both partitions must agree on (they now
  // share exec/SlabPartition.h): negative requests, Nx == 1, and
  // requests past Nx collapse identically on both stages.
  FdtdSlabPartition<double> Negative({8, 4, 4}, -5);
  EXPECT_EQ(Negative.tileCount(), 1);
  FdtdSlabPartition<double> SinglePlane({1, 4, 4}, 100);
  EXPECT_EQ(SinglePlane.tileCount(), 1);
  EXPECT_EQ(SinglePlane.tile(0).PlaneBegin, 0);
  EXPECT_EQ(SinglePlane.tile(0).PlaneEnd, 1);

  // Cross-stage agreement on every clamp outcome, ragged splits
  // included: the deposit tiles and the field slabs must report the
  // same count and identical plane ranges for the same request.
  for (Index Nx : {Index(1), Index(7), Index(8)})
    for (int Requested : {-5, 0, 1, 3, 7, 100}) {
      FdtdSlabPartition<double> Field({Nx, 4, 4}, Requested);
      TiledCurrentAccumulator<double> Deposit({Nx, 4, 4}, {0, 0, 0},
                                              {1, 1, 1}, Requested);
      ASSERT_EQ(Field.tileCount(), Deposit.tileCount())
          << "Nx=" << Nx << " requested=" << Requested;
      for (Index T = 0; T < Index(Field.tileCount()); ++T) {
        const exec::SlabRange R =
            exec::slabRange(Nx, Index(Field.tileCount()), T);
        EXPECT_EQ(Field.tile(T).PlaneBegin, R.Begin);
        EXPECT_EQ(Field.tile(T).PlaneEnd, R.End);
      }
    }
}

} // namespace
