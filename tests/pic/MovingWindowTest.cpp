//===-- tests/pic/MovingWindowTest.cpp - Moving-window guarantees --------===//
//
// Part of the hichi-boris-dpcpp-repro project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The moving-window contract, gated in CI as the
/// `pic_window_equivalence` ctest target (fields/GridWindow.h,
/// pic/YeeGrid.h ring storage, PicSimulation::shiftWindow):
///
///  - the shift trigger is a pure function of simulation time, so a
///    moving-window run is *bit-identical* across serial/openmp/sharded
///    backends at several shard counts, in both particle layouts, with
///    and without step-graph replay, with and without the rebalancer
///    armed — the same guarantee the fixed-window equivalence suites
///    pin, extended to a domain that moves;
///  - the window is physically honest: on a field-free pair plasma
///    (bitwise current cancellation) the surviving + injected particles
///    of a moving-window run are exactly — bitwise — the particles an
///    equivalent fixed big domain holds in the same x-range;
///  - a shift changes picStateHash even when every stored byte of
///    lattice data is unchanged (the window origin and shift count are
///    part of the state);
///  - each shift invalidates the captured step graph exactly once:
///    captures == 1 + shifts-before-the-last-step, everything else
///    replays;
///  - the spectral solver refuses moving-window configs up front
///    (global FFTs cannot address a ring window).
///
//===----------------------------------------------------------------------===//

#include "pic/Diagnostics.h"
#include "pic/PicSimulation.h"
#include "pic/Scenarios.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>
#include <vector>

using namespace hichi;
using namespace hichi::pic;

namespace {

struct WindowRun {
  std::uint64_t Hash = 0;
  long long Shifts = 0;
  long long Retired = 0;
  long long Injected = 0;
  long long Captures = 0;
  long long Replays = 0;
  Index Live = 0;
};

/// 60 steps of the pulse-tracking moving-window scenario with every
/// stage on \p Backend.
template <typename Array = ParticleArrayAoS<double>>
WindowRun runWindowScenario(const std::string &Backend, int Threads,
                            bool UseGraph, double RebalanceThreshold) {
  const ScenarioSetup<double> S = makeMovingWindowScenario<double>({64, 4, 4});
  PicOptions<double> Options;
  Options.LightVelocity = 1.0;
  Options.SortEveryNSteps = 20;
  Options.MovingWindow = S.MovingWindow;
  Options.UseStepGraph = UseGraph;
  Options.RebalanceThreshold = RebalanceThreshold;
  Options.PushBackend = Backend;
  Options.DepositBackend = Backend;
  Options.FieldBackend = Backend;
  Options.PushThreads = Threads;
  Options.DepositThreads = Threads;
  Options.FieldThreads = Threads;
  PicSimulation<double, Array> Sim(S.Grid, S.Origin, S.Step,
                                   Index(S.Particles.size()) + S.ExtraCapacity,
                                   S.Types, Options);
  seedScenario(Sim, S);
  Sim.run(60);

  WindowRun Out;
  Out.Hash = picStateHash(Sim.particles(), Sim.grid());
  Out.Shifts = Sim.windowShiftCount();
  Out.Retired = Sim.windowRetiredCount();
  Out.Injected = Sim.windowInjectedCount();
  Out.Captures = Sim.graphCaptureCount();
  Out.Replays = Sim.graphReplayCount();
  Out.Live = Sim.particles().size();
  return Out;
}

//===----------------------------------------------------------------------===//
// Cross-backend bit-identity (the CI gate's core)
//===----------------------------------------------------------------------===//

TEST(MovingWindowTest, BitIdenticalAcrossBackendsLayoutsGraphAndRebalance) {
  const WindowRun Ref =
      runWindowScenario("serial", 0, /*UseGraph=*/false, /*Rebalance=*/0.0);
  ASSERT_GT(Ref.Shifts, 0) << "scenario must actually shift";
  EXPECT_EQ(Ref.Retired, Ref.Injected); // uniform plasma: steady state

  const struct {
    const char *Backend;
    int Threads;
  } Configs[] = {{"serial", 0},  {"openmp", 3}, {"sharded", 1},
                 {"sharded", 2}, {"sharded", 5}};
  for (const auto &C : Configs)
    for (bool UseGraph : {false, true})
      for (double Threshold : {0.0, 1.3}) {
        const WindowRun Run =
            runWindowScenario(C.Backend, C.Threads, UseGraph, Threshold);
        EXPECT_EQ(Run.Hash, Ref.Hash)
            << C.Backend << " threads=" << C.Threads << " graph=" << UseGraph
            << " rebalance=" << Threshold;
        EXPECT_EQ(Run.Shifts, Ref.Shifts) << C.Backend;
        EXPECT_EQ(Run.Retired, Ref.Retired) << C.Backend;
        EXPECT_EQ(Run.Injected, Ref.Injected) << C.Backend;
        EXPECT_EQ(Run.Live, Ref.Live) << C.Backend;
      }

  // The SoA layout lands on the same bits (the hash reads whole records
  // through the proxy, and every stage is layout-generic).
  const WindowRun SoaPlain = runWindowScenario<ParticleArraySoA<double>>(
      "serial", 0, /*UseGraph=*/false, /*Rebalance=*/0.0);
  EXPECT_EQ(SoaPlain.Hash, Ref.Hash);
  const WindowRun SoaFull = runWindowScenario<ParticleArraySoA<double>>(
      "sharded", 5, /*UseGraph=*/true, /*Rebalance=*/1.3);
  EXPECT_EQ(SoaFull.Hash, Ref.Hash);
}

//===----------------------------------------------------------------------===//
// Physics: window shift == equivalent fixed big domain, bitwise
//===----------------------------------------------------------------------===//

/// Seeds \p PlaneCount x-planes of the resting neutral pair plasma with
/// the moving-window injector's exact placement expression (global plane
/// index against the base origin), record-adjacent pairs.
template <typename Sim>
void seedRestingPairs(Sim &S, GridSize N, Index PlaneCount,
                      const Vector3<double> &Origin,
                      const Vector3<double> &Step, int PairsPerCell,
                      double Weight) {
  for (Index I = 0; I < PlaneCount; ++I)
    for (Index J = 0; J < N.Ny; ++J)
      for (Index K = 0; K < N.Nz; ++K)
        for (int P = 0; P < PairsPerCell; ++P) {
          ParticleT<double> Part;
          Part.Position = {Origin.X + (double(I) + (P + 0.5) / PairsPerCell) *
                                          Step.X,
                           Origin.Y + (double(J) + 0.5) * Step.Y,
                           Origin.Z + (double(K) + 0.5) * Step.Z};
          Part.Momentum = Vector3<double>::zero();
          Part.Weight = Weight;
          Part.Gamma = 1.0;
          Part.Type = PS_Electron;
          S.addParticle(Part);
          Part.Type = PS_Positron;
          S.addParticle(Part);
        }
}

std::vector<std::array<double, 8>> sortedStates(
    const ParticleArrayAoS<double> &Particles, double MinX, double MaxX) {
  std::vector<std::array<double, 8>> Out;
  auto View = Particles.view();
  for (Index I = 0; I < Particles.size(); ++I) {
    const ParticleT<double> P = View[I].load();
    if (P.Position.X < MinX || P.Position.X >= MaxX)
      continue;
    Out.push_back({P.Position.X, P.Position.Y, P.Position.Z, P.Momentum.X,
                   P.Momentum.Y, P.Momentum.Z, P.Weight, double(P.Type)});
  }
  std::sort(Out.begin(), Out.end());
  return Out;
}

TEST(MovingWindowTest, ShiftMatchesEquivalentFixedDomainBitwise) {
  // Field-free resting pair plasma: co-located pairs cancel bitwise in
  // the deposit, the fields never leave exact zero, nothing moves. The
  // moving-window run's final ensemble (survivors + injected planes)
  // must then be — bitwise, as a multiset — the particles a fixed
  // domain big enough to contain the whole sweep holds in the window's
  // final x-range. Any drift here means the injector's placement or the
  // retirement edge diverged from plain seeding.
  const GridSize NWin{32, 4, 4};
  const Vector3<double> Origin(0, 0, 0), Step(0.5, 0.5, 0.5);
  const int PairsPerCell = 2, Steps = 40;
  const double Weight = 0.01;

  PicOptions<double> Options;
  Options.LightVelocity = 1.0;
  Options.SortEveryNSteps = 7;
  Options.MovingWindow.Enabled = true;
  Options.MovingWindow.Speed = 1.0;
  Options.MovingWindow.InjectPerCell = PairsPerCell;
  Options.MovingWindow.InjectType = short(PS_Electron);
  Options.MovingWindow.InjectPairType = short(PS_Positron);
  Options.MovingWindow.InjectWeight = Weight;
  const Index PlanePairs = Index(2 * PairsPerCell) * NWin.Ny * NWin.Nz;
  PicSimulation<double> Windowed(
      NWin, Origin, Step, NWin.count() * Index(2 * PairsPerCell) +
                              Index(4) * PlanePairs,
      ParticleTypeTable<double>::natural(), Options);
  seedRestingPairs(Windowed, NWin, NWin.Nx, Origin, Step, PairsPerCell,
                   Weight);
  Windowed.run(Steps);
  const Index Shifts = Windowed.windowOriginPlanes();
  ASSERT_GT(Shifts, 0);

  const GridSize NBig{NWin.Nx + 16, 4, 4};
  ASSERT_GE(NBig.Nx, NWin.Nx + Shifts) << "fixed domain must contain the sweep";
  PicOptions<double> FixedOptions;
  FixedOptions.LightVelocity = 1.0;
  FixedOptions.SortEveryNSteps = 7;
  PicSimulation<double> Fixed(NBig, Origin, Step,
                              NBig.count() * Index(2 * PairsPerCell),
                              ParticleTypeTable<double>::natural(),
                              FixedOptions);
  seedRestingPairs(Fixed, NBig, NBig.Nx, Origin, Step, PairsPerCell, Weight);
  Fixed.run(Steps);

  // Both runs are exactly field-free (the pair cancellation is bitwise).
  EXPECT_EQ(Windowed.fieldEnergy(), 0.0);
  EXPECT_EQ(Fixed.fieldEnergy(), 0.0);

  const double WinLo = Windowed.grid().origin().X;
  const double WinHi = WinLo + double(NWin.Nx) * Step.X;
  EXPECT_GT(WinLo, Origin.X); // the window really moved
  const auto FromWindow = sortedStates(Windowed.particles(), WinLo, WinHi);
  const auto FromFixed = sortedStates(Fixed.particles(), WinLo, WinHi);
  ASSERT_EQ(FromWindow.size(), std::size_t(Windowed.particles().size()))
      << "every live particle must lie inside the window";
  EXPECT_EQ(FromWindow, FromFixed);
}

//===----------------------------------------------------------------------===//
// picStateHash covers the window position (satellite regression)
//===----------------------------------------------------------------------===//

TEST(MovingWindowTest, StateHashChangesOnShiftEvenWithIdenticalBytes) {
  // An all-zero grid stays all-zero through a shift (entered planes are
  // zeroed), and an empty ensemble contributes nothing — so if the hash
  // did not mix the window origin and shift count, a shifted grid would
  // collide with the unshifted one.
  const GridSize N{16, 4, 4};
  YeeGrid<double> Grid(N, {0, 0, 0}, {0.5, 0.5, 0.5});
  ParticleArrayAoS<double> Empty(1);
  const std::uint64_t AtRest = picStateHash(Empty, Grid);

  Grid.shiftWindow(3);
  const std::uint64_t Shifted = picStateHash(Empty, Grid);
  EXPECT_NE(Shifted, AtRest);

  // Restoring the recorded window state reproduces the hash exactly —
  // the checkpoint path's re-labeling contract.
  const GridWindow Saved = Grid.window();
  YeeGrid<double> Reloaded(N, {0, 0, 0}, {0.5, 0.5, 0.5});
  Reloaded.restoreWindow(Saved);
  EXPECT_EQ(picStateHash(Empty, Reloaded), Shifted);
}

//===----------------------------------------------------------------------===//
// Step-graph economy: exactly one recapture per shift
//===----------------------------------------------------------------------===//

TEST(MovingWindowTest, ExactlyOneGraphRecapturePerShift) {
  const ScenarioSetup<double> S = makeMovingWindowScenario<double>({64, 4, 4});
  PicOptions<double> Options;
  Options.LightVelocity = 1.0;
  Options.SortEveryNSteps = 20;
  Options.MovingWindow = S.MovingWindow;
  Options.UseStepGraph = true;
  PicSimulation<double> Sim(S.Grid, S.Origin, S.Step,
                            Index(S.Particles.size()) + S.ExtraCapacity,
                            S.Types, Options);
  seedScenario(Sim, S);

  // A shift at the end of step k invalidates the graph; the recapture
  // happens at the start of step k+1. So after N steps the capture
  // count is exactly 1 (initial) + the shifts that had occurred before
  // the final step — no shift may cost more than one recapture.
  const int Steps = 60;
  long long ShiftsBeforeLastStep = 0;
  for (int I = 0; I < Steps; ++I) {
    if (I == Steps - 1)
      ShiftsBeforeLastStep = Sim.windowShiftCount();
    Sim.step();
  }
  ASSERT_GT(Sim.windowShiftCount(), 0);
  EXPECT_EQ(Sim.graphCaptureCount(), 1 + ShiftsBeforeLastStep);
  EXPECT_EQ(Sim.graphReplayCount(), Steps - Sim.graphCaptureCount());
}

//===----------------------------------------------------------------------===//
// Spectral solver rejection
//===----------------------------------------------------------------------===//

TEST(MovingWindowTest, SpectralSolverRejectsMovingWindow) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  PicOptions<double> Options;
  Options.Solver = FieldSolverKind::Spectral;
  Options.MovingWindow.Enabled = true;
  EXPECT_DEATH(
      {
        PicSimulation<double> Sim({16, 4, 4}, {0, 0, 0}, {0.5, 0.5, 0.5}, 16,
                                  ParticleTypeTable<double>::natural(),
                                  Options);
      },
      "moving window requires the FDTD solver");
}

} // namespace
