//===-- tests/pic/GraphEquivalenceTest.cpp - Graph-replay equivalence ----===//
//
// Part of the hichi-boris-dpcpp-repro project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The step-graph determinism guarantee, gated in CI as the
/// `pic_graph_equivalence` ctest target: a PIC simulation that captures
/// its five-stage launch DAG on the first step and *replays* it on
/// every later one (PicOptions::UseStepGraph, exec/StepGraph.h) is
/// *bit-identical* over 100 steps to the same simulation resubmitting
/// every launch — for every registered backend x Maxwell solver x
/// particle layout, including the sharded backend across shard counts
/// and explicit deposit/field tile counts. Replay must also be cheaper
/// to issue: the launch ledger of a graph run stays at the capture
/// step's counts while the resubmitting run pays them every step.
///
//===----------------------------------------------------------------------===//

#include "exec/BackendRegistry.h"
#include "pic/Diagnostics.h"
#include "pic/PicSimulation.h"
#include "pic/Scenarios.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>

using namespace hichi;
using namespace hichi::pic;

namespace {

/// One 100-step Langmuir-style run on a power-of-two grid (so both
/// solvers accept the setup) with every stage on \p Backend, returning
/// the final bit-state hash. With \p UseGraph the run must capture
/// exactly once and replay the other 99 steps; its submit ledger must
/// stay strictly below the resubmitting run's.
template <typename Array>
std::uint64_t graphSimulationHash(FieldSolverKind Solver,
                                  const std::string &Backend, int Threads,
                                  int Tiles, bool UseGraph) {
  const GridSize N{16, 4, 4};
  PicOptions<double> Options;
  Options.LightVelocity = 1.0;
  Options.SortEveryNSteps = 7; // exercise re-sorting between replays
  Options.Solver = Solver;
  Options.PushBackend = Backend;
  Options.DepositBackend = Backend;
  Options.FieldBackend = Backend;
  Options.PushThreads = Threads;
  Options.DepositThreads = Threads;
  Options.FieldThreads = Threads;
  Options.DepositTiles = Tiles;
  Options.FieldTiles = Tiles;
  Options.UseStepGraph = UseGraph;
  const int PerCell = 2;
  PicSimulation<double, Array> Sim(N, {0, 0, 0}, {0.5, 0.5, 0.5},
                                   N.count() * PerCell,
                                   ParticleTypeTable<double>::natural(),
                                   Options);
  for (Index C = 0; C < N.count(); ++C) {
    const Index I = C / (N.Ny * N.Nz);
    const Index J = (C / N.Nz) % N.Ny;
    const Index K = C % N.Nz;
    for (int P = 0; P < PerCell; ++P) {
      ParticleT<double> Particle;
      Particle.Position = {(double(I) + 0.25 + 0.5 * P) * 0.5,
                           (double(J) + 0.5) * 0.5, (double(K) + 0.5) * 0.5};
      const double Vx =
          0.02 * std::sin(2.0 * constants::Pi * Particle.Position.X / 8.0);
      Particle.Momentum = {Vx / std::sqrt(1 - Vx * Vx), 0, 0};
      Particle.Weight = 0.05;
      Particle.Type = PS_Electron;
      Sim.addParticle(Particle);
    }
  }
  Sim.run(100);
  if (UseGraph) {
    EXPECT_EQ(Sim.graphCaptureCount(), 1) << Backend;
    EXPECT_EQ(Sim.graphReplayCount(), 99) << Backend;
  }
  return picStateHash(Sim.particles(), Sim.grid());
}

/// Replay-vs-resubmit bit-equivalence for one backend across both
/// solvers.
template <typename Array>
void checkGraphMatchesResubmit(const std::string &Backend, int Threads = 3,
                               int Tiles = 0) {
  for (FieldSolverKind Solver :
       {FieldSolverKind::Fdtd, FieldSolverKind::Spectral})
    EXPECT_EQ(graphSimulationHash<Array>(Solver, Backend, Threads, Tiles,
                                         /*UseGraph=*/true),
              graphSimulationHash<Array>(Solver, Backend, Threads, Tiles,
                                         /*UseGraph=*/false))
        << Backend << " threads=" << Threads << " tiles=" << Tiles
        << " solver=" << (Solver == FieldSolverKind::Fdtd ? "fdtd" : "spectral");
}

TEST(GraphEquivalenceTest, SerialAoS) {
  checkGraphMatchesResubmit<ParticleArrayAoS<double>>("serial");
}

TEST(GraphEquivalenceTest, SerialSoA) {
  checkGraphMatchesResubmit<ParticleArraySoA<double>>("serial");
}

TEST(GraphEquivalenceTest, OpenmpAoS) {
  checkGraphMatchesResubmit<ParticleArrayAoS<double>>("openmp");
}

TEST(GraphEquivalenceTest, OpenmpSoA) {
  checkGraphMatchesResubmit<ParticleArraySoA<double>>("openmp");
}

TEST(GraphEquivalenceTest, DpcppAoS) {
  checkGraphMatchesResubmit<ParticleArrayAoS<double>>("dpcpp");
}

TEST(GraphEquivalenceTest, DpcppNumaSoA) {
  checkGraphMatchesResubmit<ParticleArraySoA<double>>("dpcpp-numa");
}

TEST(GraphEquivalenceTest, AsyncPipelineAoS) {
  checkGraphMatchesResubmit<ParticleArrayAoS<double>>("async-pipeline");
}

TEST(GraphEquivalenceTest, AsyncPipelineSoA) {
  checkGraphMatchesResubmit<ParticleArraySoA<double>>("async-pipeline");
}

TEST(GraphEquivalenceTest, ShardedAcrossShardCountsAoS) {
  for (int Shards : {1, 2, 5, 13})
    checkGraphMatchesResubmit<ParticleArrayAoS<double>>("sharded", Shards);
}

TEST(GraphEquivalenceTest, ShardedSpectralSoA) {
  checkGraphMatchesResubmit<ParticleArraySoA<double>>("sharded", 5);
}

TEST(GraphEquivalenceTest, ExplicitTileCountsAoS) {
  for (int Tiles : {1, 3, 7})
    checkGraphMatchesResubmit<ParticleArrayAoS<double>>("openmp", 3, Tiles);
}

/// The submit-overhead claim behind the whole feature: over the same
/// run, graph mode submits (counts) launches only on the capture step,
/// so its ledger is strictly below the resubmitting run's.
TEST(GraphEquivalenceTest, ReplayLedgerStaysAtCaptureCounts) {
  auto Run = [](bool UseGraph) {
    const GridSize N{8, 4, 4};
    PicOptions<double> Options;
    Options.LightVelocity = 1.0;
    Options.PushBackend = "openmp";
    Options.DepositBackend = "openmp";
    Options.FieldBackend = "openmp";
    Options.PushThreads = 2;
    Options.DepositThreads = 2;
    Options.FieldThreads = 2;
    Options.UseStepGraph = UseGraph;
    PicSimulation<double> Sim(N, {0, 0, 0}, {0.5, 0.5, 0.5}, 64,
                              ParticleTypeTable<double>::natural(), Options);
    for (int P = 0; P < 64; ++P) {
      ParticleT<double> Particle;
      Particle.Position = {0.1 + 0.05 * P, 0.3, 0.7};
      Particle.Momentum = {0.01, 0, 0};
      Particle.Weight = 0.05;
      Particle.Type = PS_Electron;
      Sim.addParticle(Particle);
    }
    Sim.run(20);
    return Sim.submitOverhead();
  };
  const RunStats Graph = Run(true);
  const RunStats Resubmit = Run(false);
  EXPECT_GT(Graph.Launches, 0);
  EXPECT_LT(Graph.Launches, Resubmit.Launches);
  EXPECT_LT(Graph.SpecsBuilt, Resubmit.SpecsBuilt);
}

/// Invalidation: growing the ensemble mid-run must discard the captured
/// graph (its pointers and item counts are stale), recapture, and stay
/// bit-identical to the resubmitting run doing the same thing.
TEST(GraphEquivalenceTest, RecapturesAfterEnsembleGrowth) {
  auto Run = [](bool UseGraph, long long *Captures) {
    const GridSize N{8, 4, 4};
    PicOptions<double> Options;
    Options.LightVelocity = 1.0;
    Options.SortEveryNSteps = 7;
    Options.PushBackend = "sharded";
    Options.DepositBackend = "sharded";
    Options.FieldBackend = "sharded";
    Options.PushThreads = 3;
    Options.DepositThreads = 3;
    Options.FieldThreads = 3;
    Options.UseStepGraph = UseGraph;
    PicSimulation<double> Sim(N, {0, 0, 0}, {0.5, 0.5, 0.5}, 96,
                              ParticleTypeTable<double>::natural(), Options);
    auto Seed = [&Sim](int Count, double Shift) {
      for (int P = 0; P < Count; ++P) {
        ParticleT<double> Particle;
        Particle.Position = {0.1 + 0.04 * P + Shift, 0.6, 1.1};
        Particle.Momentum = {0.01, 0.002 * P, 0};
        Particle.Weight = 0.05;
        Particle.Type = PS_Electron;
        Sim.addParticle(Particle);
      }
    };
    Seed(48, 0.0);
    Sim.run(50);
    Seed(32, 0.02); // reallocation + size change invalidates the graph
    Sim.run(50);
    if (Captures)
      *Captures = Sim.graphCaptureCount();
    return picStateHash(Sim.particles(), Sim.grid());
  };
  long long Captures = 0;
  const std::uint64_t GraphHash = Run(true, &Captures);
  const std::uint64_t ClassicHash = Run(false, nullptr);
  EXPECT_EQ(GraphHash, ClassicHash);
  EXPECT_EQ(Captures, 2); // one per ensemble shape
}

/// Rebalance x graph interplay: a fired repartition bumps the partition
/// epoch, so the captured graph (whose launch ranges bake in the old
/// split) must be invalidated — exactly one recapture per fire, every
/// other step replays, and the replayed run stays bit-identical to the
/// same rebalanced run resubmitting every launch.
TEST(GraphEquivalenceTest, RecapturesAfterRebalanceFires) {
  auto Run = [](bool UseGraph, long long *Captures, long long *Replays,
                long long *Fires) {
    const ScenarioSetup<double> S = makeDriftingSlabScenario<double>();
    PicOptions<double> Options;
    Options.LightVelocity = 1.0;
    Options.SortEveryNSteps = 20;
    Options.PushBackend = "sharded";
    Options.DepositBackend = "sharded";
    Options.FieldBackend = "sharded";
    Options.PushThreads = 4;
    Options.DepositThreads = 4;
    Options.FieldThreads = 4;
    Options.UseStepGraph = UseGraph;
    Options.RebalanceThreshold = 1.3; // the slab trips this repeatedly
    PicSimulation<double> Sim(S.Grid, S.Origin, S.Step,
                              Index(S.Particles.size()), S.Types, Options);
    seedScenario(Sim, S);
    Sim.run(100);
    if (Captures)
      *Captures = Sim.graphCaptureCount();
    if (Replays)
      *Replays = Sim.graphReplayCount();
    if (Fires)
      *Fires = Sim.rebalanceStats().Fires;
    return picStateHash(Sim.particles(), Sim.grid());
  };
  long long Captures = 0, Replays = 0, Fires = 0;
  const std::uint64_t GraphHash = Run(true, &Captures, &Replays, &Fires);
  const std::uint64_t ClassicHash = Run(false, nullptr, nullptr, nullptr);
  EXPECT_EQ(GraphHash, ClassicHash);
  EXPECT_GE(Fires, 1);
  EXPECT_EQ(Captures, 1 + Fires); // the initial capture + one per fire
  EXPECT_EQ(Replays, 100 - Captures);
}

} // namespace
