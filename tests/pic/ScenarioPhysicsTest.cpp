//===-- tests/pic/ScenarioPhysicsTest.cpp - Scenario physics gates -------===//
//
// Part of the hichi-boris-dpcpp-repro project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Physics validation of the skew-driving scenarios (pic/Scenarios.h),
/// gated in CI as the `pic_scenario_physics` ctest target. Each
/// scenario carries a closed-form expectation and every check runs on
/// the serial loop with a sharded-backend bit-equivalence companion —
/// the physics must be right AND identical across backends:
///
///  - two-stream: the field-energy e-fold rate over the linear phase
///    fits the cold-beam dispersion's growth rate (gamma = w_b/2 at the
///    seeded fastest-growing mode, so 0.5 here);
///  - two-species: the oscillation frequency obeys
///    w^2 = w_pe^2 (1 + 1/M) — the frequency *shift* scales as the
///    inverse ion mass ratio, and the ordering w(M=1) > w(M=4) holds;
///  - density-gradient + open boundary: field energy stays bounded by
///    the sponge, the live count falls monotonically and matches the
///    absorber's ledger, and no current is ever deposited on the deep
///    boundary planes (bitwise zero — drifting particles are removed
///    before their Esirkepov footprint can reach them);
///  - a *fired* rebalance on the gradient (real fields, so the sort is
///    a real permutation) keeps rebalanced runs bit-identical across
///    backends while genuinely diverging from the non-rebalanced run.
///
//===----------------------------------------------------------------------===//

#include "pic/Diagnostics.h"
#include "pic/PicSimulation.h"
#include "pic/Scenarios.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

using namespace hichi;
using namespace hichi::pic;

namespace {

struct ScenarioRun {
  std::uint64_t Hash = 0;
  std::vector<double> Energy; ///< field energy after each step
  std::vector<double> Times;
  std::vector<Index> LiveCounts; ///< ensemble size after each step
  long long Absorbed = 0;
  long long Fires = 0;
  double MaxDeepJ = 0; ///< max |J| ever seen on the deep boundary planes
};

/// Advances \p S for \p Steps steps with every stage on \p Backend,
/// recording the traces the physics checks fit against. The deep-J
/// probe scans the three outermost x-planes on each side after every
/// step (current nodes an absorbed drifting particle must never reach).
ScenarioRun runScenario(const ScenarioSetup<double> &S,
                        const std::string &Backend, int Threads, int Steps,
                        double RebalanceThreshold = 0) {
  PicOptions<double> Options;
  Options.LightVelocity = 1.0;
  Options.SortEveryNSteps = 20;
  Options.AbsorbingCells = S.AbsorbingCells;
  Options.RebalanceThreshold = RebalanceThreshold;
  Options.PushBackend = Backend;
  Options.DepositBackend = Backend;
  Options.FieldBackend = Backend;
  Options.PushThreads = Threads;
  Options.DepositThreads = Threads;
  Options.FieldThreads = Threads;
  PicSimulation<double> Sim(S.Grid, S.Origin, S.Step,
                            Index(S.Particles.size()), S.Types, Options);
  seedScenario(Sim, S);

  ScenarioRun Out;
  const bool ProbeDeepJ = S.AbsorbingCells > 0;
  for (int Step = 0; Step < Steps; ++Step) {
    Sim.step();
    Out.Energy.push_back(Sim.fieldEnergy());
    Out.Times.push_back(Sim.time());
    Out.LiveCounts.push_back(Sim.particles().size());
    if (ProbeDeepJ) {
      const auto &G = Sim.grid();
      for (Index I : {Index(0), Index(1), Index(2), S.Grid.Nx - 3,
                      S.Grid.Nx - 2, S.Grid.Nx - 1})
        for (Index J = 0; J < S.Grid.Ny; ++J)
          for (Index K = 0; K < S.Grid.Nz; ++K)
            Out.MaxDeepJ = std::max(
                {Out.MaxDeepJ, std::abs(double(G.Jx(I, J, K))),
                 std::abs(double(G.Jy(I, J, K))),
                 std::abs(double(G.Jz(I, J, K)))});
    }
  }
  Out.Hash = picStateHash(Sim.particles(), Sim.grid());
  Out.Absorbed = Sim.absorbedParticleCount();
  Out.Fires = Sim.rebalanceStats().Fires;
  return Out;
}

/// Least-squares slope of log(fieldEnergy) over the linear-growth
/// window [\p T0, \p T1]; the instability's growth rate is half of it
/// (energy ~ e^{2 gamma t}).
double fitGrowthRate(const ScenarioRun &R, double T0, double T1) {
  double Sx = 0, Sy = 0, Sxx = 0, Sxy = 0;
  int Count = 0;
  for (std::size_t I = 0; I < R.Energy.size(); ++I)
    if (R.Times[I] > T0 && R.Times[I] < T1 && R.Energy[I] > 0) {
      const double X = R.Times[I], Y = std::log(R.Energy[I]);
      Sx += X;
      Sy += Y;
      Sxx += X * X;
      Sxy += X * Y;
      ++Count;
    }
  if (Count < 3)
    return 0;
  return (Count * Sxy - Sx * Sy) / (Count * Sxx - Sx * Sx) / 2.0;
}

/// Oscillation frequency from the field-energy peak spacing (the E
/// energy peaks twice per period, so w = pi / spacing).
double fitOmega(const ScenarioRun &R) {
  const double MaxE = *std::max_element(R.Energy.begin(), R.Energy.end());
  std::vector<double> Peaks;
  for (std::size_t I = 1; I + 1 < R.Energy.size(); ++I)
    if (R.Energy[I] > R.Energy[I - 1] && R.Energy[I] >= R.Energy[I + 1] &&
        R.Energy[I] > 0.2 * MaxE)
      Peaks.push_back(R.Times[I]);
  if (Peaks.size() < 2)
    return 0;
  return constants::Pi /
         ((Peaks.back() - Peaks.front()) / double(Peaks.size() - 1));
}

//===----------------------------------------------------------------------===//
// Two-stream instability vs the cold-beam dispersion relation
//===----------------------------------------------------------------------===//

TEST(ScenarioPhysicsTest, TwoStreamGrowthRateMatchesDispersion) {
  const ScenarioSetup<double> S = makeTwoStreamScenario<double>();
  ASSERT_DOUBLE_EQ(double(S.ExpectedGrowthRate), 0.5);
  const ScenarioRun Serial = runScenario(S, "serial", 0, 120);
  // Fit over the linear phase: late enough that the seeded mode
  // dominates the lattice noise, early enough that trapping has not
  // saturated it. The dispersion maximum is flat in k, so a generous
  // 25% band is still a sharp test of "this is the right instability"
  // (the rate would be 0 without the resonance and ~1 at twice it).
  const double Gamma = fitGrowthRate(Serial, 4.0, 10.0);
  EXPECT_NEAR(Gamma, 0.5, 0.125) << "measured growth rate " << Gamma;

  const ScenarioRun Sharded = runScenario(S, "sharded", 4, 120);
  EXPECT_EQ(Serial.Hash, Sharded.Hash);
}

//===----------------------------------------------------------------------===//
// Two-species frequency shift vs the ion mass ratio
//===----------------------------------------------------------------------===//

TEST(ScenarioPhysicsTest, TwoSpeciesFrequencyScalesWithMassRatio) {
  const ScenarioSetup<double> Light = makeTwoSpeciesScenario<double>(1.0);
  const ScenarioSetup<double> Heavy = makeTwoSpeciesScenario<double>(4.0);
  EXPECT_NEAR(double(Light.ExpectedOmega), std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(double(Heavy.ExpectedOmega), std::sqrt(1.25), 1e-12);

  const ScenarioRun RunLight = runScenario(Light, "serial", 0, 120);
  const ScenarioRun RunHeavy = runScenario(Heavy, "serial", 0, 120);
  const double OmegaLight = fitOmega(RunLight);
  const double OmegaHeavy = fitOmega(RunHeavy);

  // w^2 = w_pe^2 (1 + 1/M) with w_pe = 1: the *shift* w^2 - 1 times M
  // recovers 1 for any mass — the scaling law itself, not just two
  // point values. (Measured: ~1.03 for both; 25% tolerance.)
  EXPECT_NEAR((OmegaLight * OmegaLight - 1.0) * 1.0, 1.0, 0.25)
      << "omega(M=1) = " << OmegaLight;
  EXPECT_NEAR((OmegaHeavy * OmegaHeavy - 1.0) * 4.0, 1.0, 0.25)
      << "omega(M=4) = " << OmegaHeavy;
  // Heavier ions oscillate slower — the ordering must hold exactly.
  EXPECT_GT(OmegaLight, OmegaHeavy);

  const ScenarioRun Sharded = runScenario(Heavy, "sharded", 4, 120);
  EXPECT_EQ(RunHeavy.Hash, Sharded.Hash);
}

//===----------------------------------------------------------------------===//
// Density gradient into an open boundary
//===----------------------------------------------------------------------===//

TEST(ScenarioPhysicsTest, DensityGradientBoundedFieldsMonotoneCount) {
  const ScenarioSetup<double> S = makeDensityGradientScenario<double>();
  const ScenarioRun Serial = runScenario(S, "serial", 0, 150);

  // The sponge must keep the field energy bounded (measured ~2e-2; an
  // unbounded reflection blowup would exceed this within the run).
  const double MaxE =
      *std::max_element(Serial.Energy.begin(), Serial.Energy.end());
  EXPECT_LT(MaxE, 0.5);

  // The live count never grows, strictly shrinks overall, and the
  // absorber's ledger accounts for every removed particle.
  for (std::size_t T = 1; T < Serial.LiveCounts.size(); ++T)
    EXPECT_LE(Serial.LiveCounts[T], Serial.LiveCounts[T - 1]) << "step " << T;
  EXPECT_GT(Serial.Absorbed, 0);
  EXPECT_EQ(Index(S.Particles.size()) - Serial.LiveCounts.back(),
            Index(Serial.Absorbed));

  // Interior dynamics identical across backends, shrinking ensemble
  // and all.
  const ScenarioRun Openmp = runScenario(S, "openmp", 3, 150);
  const ScenarioRun Sharded = runScenario(S, "sharded", 4, 150);
  EXPECT_EQ(Serial.Hash, Openmp.Hash);
  EXPECT_EQ(Serial.Hash, Sharded.Hash);
}

TEST(ScenarioPhysicsTest, AbsorbingBoundaryKeepsDeepCurrentZero) {
  // Particles are removed at end of step; with drift 0.15 a survivor
  // can reach at most ~plane 6 before the next removal, and the
  // Esirkepov footprint spans +-2 planes — so current nodes on planes
  // {0,1,2} and {Nx-3..Nx-1} must stay at *bitwise* zero all run.
  const ScenarioSetup<double> S = makeDensityGradientScenario<double>();
  const ScenarioRun Serial = runScenario(S, "serial", 0, 150);
  EXPECT_EQ(Serial.MaxDeepJ, 0.0);
}

TEST(ScenarioPhysicsTest, GradientRebalanceBitIdenticalAcrossBackends) {
  // The conservation-gated half of the rebalance contract: with real
  // fields the repartition's sort is a real permutation, so the
  // rebalanced run legitimately diverges from the plain one — but all
  // *rebalanced* runs must still agree bitwise across backends (the
  // trigger fires on the same steps everywhere).
  const ScenarioSetup<double> S = makeDensityGradientScenario<double>();
  const ScenarioRun Plain = runScenario(S, "serial", 0, 150);
  const ScenarioRun Serial = runScenario(S, "serial", 0, 150, 1.3);
  const ScenarioRun Sharded = runScenario(S, "sharded", 4, 150, 1.3);
  ASSERT_GE(Serial.Fires, 1);
  EXPECT_EQ(Serial.Fires, Sharded.Fires);
  EXPECT_EQ(Serial.Hash, Sharded.Hash);
  EXPECT_NE(Serial.Hash, Plain.Hash);
  // Same physics either way: identical absorption ledger and final
  // live count.
  EXPECT_EQ(Serial.Absorbed, Plain.Absorbed);
  EXPECT_EQ(Serial.LiveCounts.back(), Plain.LiveCounts.back());
}

} // namespace
