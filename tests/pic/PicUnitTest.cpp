//===-- tests/pic/PicUnitTest.cpp - Form factors, Yee grid, FDTD ---------===//
//
// Part of the hichi-boris-dpcpp-repro project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "pic/FdtdSolver.h"
#include "pic/FieldInterpolator.h"
#include "pic/FormFactor.h"
#include "pic/YeeGrid.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace hichi;
using namespace hichi::pic;

namespace {

//===----------------------------------------------------------------------===//
// Form factors
//===----------------------------------------------------------------------===//

template <typename Shape> class FormFactorTest : public ::testing::Test {};
using Shapes = ::testing::Types<NgpShape, CicShape, TscShape>;
TYPED_TEST_SUITE(FormFactorTest, Shapes);

TYPED_TEST(FormFactorTest, WeightsSumToOneEverywhere) {
  RandomStream<double> Rng(2);
  for (int Trial = 0; Trial < 200; ++Trial) {
    double X = Rng.uniform(-10.0, 10.0);
    EXPECT_NEAR((weightSum<TypeParam, double>(X)), 1.0, 1e-12) << X;
  }
}

TYPED_TEST(FormFactorTest, WeightsAreNonNegative) {
  RandomStream<double> Rng(3);
  for (int Trial = 0; Trial < 200; ++Trial) {
    Index Base;
    double W[TypeParam::Support];
    TypeParam::weights(Rng.uniform(-5.0, 5.0), Base, W);
    for (int I = 0; I < TypeParam::Support; ++I)
      EXPECT_GE(W[I], -1e-15);
  }
}

TEST(FormFactorTest, CicReproducesLinearFunctions) {
  // First-order shape: interpolating f(i) = i at x returns x.
  RandomStream<double> Rng(4);
  for (int Trial = 0; Trial < 100; ++Trial) {
    double X = Rng.uniform(0.0, 100.0);
    Index Base;
    double W[2];
    CicShape::weights(X, Base, W);
    EXPECT_NEAR(W[0] * double(Base) + W[1] * double(Base + 1), X, 1e-10);
  }
}

TEST(FormFactorTest, TscReproducesLinearFunctions) {
  // Second-order shape also reproduces linears (and quadratics' means).
  RandomStream<double> Rng(5);
  for (int Trial = 0; Trial < 100; ++Trial) {
    double X = Rng.uniform(0.0, 100.0);
    Index Base;
    double W[3];
    TscShape::weights(X, Base, W);
    double Sum = 0;
    for (int I = 0; I < 3; ++I)
      Sum += W[I] * double(Base + I);
    EXPECT_NEAR(Sum, X, 1e-10);
  }
}

TEST(FormFactorTest, NgpPicksNearestNode) {
  Index Base;
  double W[1];
  NgpShape::weights(2.4, Base, W);
  EXPECT_EQ(Base, 2);
  NgpShape::weights(2.6, Base, W);
  EXPECT_EQ(Base, 3);
}

//===----------------------------------------------------------------------===//
// ScalarLattice / YeeGrid
//===----------------------------------------------------------------------===//

TEST(ScalarLatticeTest, PeriodicIndexing) {
  ScalarLattice<double> L({4, 4, 4});
  L(1, 2, 3) = 9.0;
  EXPECT_DOUBLE_EQ(L(1 + 4, 2 - 4, 3 + 8), 9.0);
  EXPECT_DOUBLE_EQ(L(-3, 2, 3), 9.0);
}

TEST(ScalarLatticeTest, SumOfSquares) {
  ScalarLattice<double> L({2, 2, 2});
  L(0, 0, 0) = 3.0;
  L(1, 1, 1) = 4.0;
  EXPECT_DOUBLE_EQ(L.sumOfSquares(), 25.0);
}

TEST(YeeGridTest, WrapPosition) {
  YeeGrid<double> G({4, 4, 4}, {0, 0, 0}, {1, 1, 1});
  auto P = G.wrapPosition({4.5, -0.5, 2.0});
  EXPECT_NEAR(P.X, 0.5, 1e-12);
  EXPECT_NEAR(P.Y, 3.5, 1e-12);
  EXPECT_NEAR(P.Z, 2.0, 1e-12);
}

TEST(YeeGridTest, FieldEnergyOfUniformField) {
  YeeGrid<double> G({4, 4, 4}, {0, 0, 0}, {1, 1, 1});
  G.Ex.fill(2.0); // E^2 = 4 at 64 nodes, dV = 1
  EXPECT_NEAR(G.fieldEnergy(), 64 * 4.0 / (8 * constants::Pi), 1e-10);
}

//===----------------------------------------------------------------------===//
// FDTD
//===----------------------------------------------------------------------===//

TEST(FdtdTest, CourantLimitFormula) {
  FdtdSolver<double> S(/*c=*/1.0);
  YeeGrid<double> G({8, 8, 8}, {0, 0, 0}, {1, 1, 1});
  EXPECT_NEAR(S.courantLimit(G), 1.0 / std::sqrt(3.0), 1e-12);
}

TEST(FdtdTest, UniformFieldsAreStationary) {
  // curl of a constant field vanishes: nothing may change in vacuum.
  FdtdSolver<double> S(1.0);
  YeeGrid<double> G({4, 4, 4}, {0, 0, 0}, {1, 1, 1});
  G.Ex.fill(1.0);
  G.By.fill(-2.0);
  S.step(G, 0.2);
  EXPECT_DOUBLE_EQ(G.Ex(1, 2, 3), 1.0);
  EXPECT_DOUBLE_EQ(G.By(3, 0, 1), -2.0);
  EXPECT_DOUBLE_EQ(G.Ez(0, 0, 0), 0.0);
}

/// Initializes the fundamental standing/travelling plane-wave mode along x
/// with E_y and B_z staggered correctly for Yee.
static void initPlaneWave(YeeGrid<double> &G, int ModeCount) {
  const GridSize N = G.size();
  const double K = 2 * constants::Pi * ModeCount / double(N.Nx);
  for (Index I = 0; I < N.Nx; ++I)
    for (Index J = 0; J < N.Ny; ++J)
      for (Index K3 = 0; K3 < N.Nz; ++K3) {
        // Ey at (i, j+1/2, k) -> x = i; Bz at (i+1/2, j+1/2, k).
        G.Ey(I, J, K3) = std::sin(K * double(I));
        G.Bz(I, J, K3) = std::sin(K * (double(I) + 0.5));
      }
}

TEST(FdtdTest, VacuumEnergyIsConserved) {
  FdtdSolver<double> S(1.0);
  YeeGrid<double> G({32, 2, 2}, {0, 0, 0}, {1, 1, 1});
  initPlaneWave(G, 2);
  const double E0 = G.fieldEnergy();
  const double Dt = 0.5 * S.courantLimit(G);
  for (int Step = 0; Step < 200; ++Step)
    S.step(G, Dt);
  EXPECT_NEAR(G.fieldEnergy() / E0, 1.0, 0.01)
      << "vacuum FDTD must conserve energy to ~1%";
}

TEST(FdtdTest, PlaneWavePropagatesAtNearLightSpeed) {
  // Track the phase of the fundamental mode: after time T the travelling
  // wave sin(k(x - ct)) must have advanced by ~c T (within numerical
  // dispersion of the coarse grid).
  FdtdSolver<double> S(1.0);
  const int Nx = 64;
  YeeGrid<double> G({Nx, 2, 2}, {0, 0, 0}, {1, 1, 1});
  initPlaneWave(G, 1);
  const double K = 2 * constants::Pi / Nx;
  const double Dt = 0.5 * S.courantLimit(G);
  const int Steps = 400;
  for (int Step = 0; Step < Steps; ++Step)
    S.step(G, Dt);
  // Fit the phase of Ey via the discrete Fourier coefficient of mode 1.
  double Re = 0, Im = 0;
  for (Index I = 0; I < Nx; ++I) {
    Re += G.Ey(I, 0, 0) * std::cos(K * double(I));
    Im += G.Ey(I, 0, 0) * std::sin(K * double(I));
  }
  // Ey = sin(k x - phi): sum(Ey cos) = -(N/2) sin(phi), sum(Ey sin) =
  // (N/2) cos(phi), so phi = atan2(-Re, Im). E x B points along +x, so
  // phi advances as +omega t.
  double Phase = std::atan2(-Re, Im);
  double Expected = std::fmod(K * Dt * Steps, 2 * constants::Pi);
  double Diff = std::remainder(Phase - Expected, 2 * constants::Pi);
  EXPECT_NEAR(std::abs(Diff), 0.0, 0.1)
      << "phase velocity error beyond numerical dispersion budget";
}

TEST(FdtdTest, CurrentSourceDrivesEField) {
  // A uniform Jx for one step must produce Ex = -4 pi dt Jx.
  FdtdSolver<double> S(1.0);
  YeeGrid<double> G({4, 4, 4}, {0, 0, 0}, {1, 1, 1});
  G.Jx.fill(0.25);
  const double Dt = 0.1;
  S.advanceE(G, Dt);
  EXPECT_NEAR(G.Ex(2, 2, 2), -4 * constants::Pi * Dt * 0.25, 1e-12);
}

//===----------------------------------------------------------------------===//
// Yee interpolation
//===----------------------------------------------------------------------===//

TEST(YeeInterpolatorTest, UniformFieldInterpolatesExactly) {
  YeeGrid<double> G({4, 4, 4}, {0, 0, 0}, {1, 1, 1});
  G.Ex.fill(3.0);
  G.Bz.fill(-1.5);
  YeeInterpolator<double> Interp(G);
  RandomStream<double> Rng(6);
  for (int Trial = 0; Trial < 50; ++Trial) {
    Vector3<double> P(Rng.uniform(0, 4), Rng.uniform(0, 4), Rng.uniform(0, 4));
    auto F = Interp(P, 0, 0);
    EXPECT_NEAR(F.E.X, 3.0, 1e-12);
    EXPECT_NEAR(F.B.Z, -1.5, 1e-12);
    EXPECT_NEAR(F.E.Y, 0.0, 1e-15);
  }
}

TEST(YeeInterpolatorTest, RespectsStaggering) {
  // Put a delta on Ex at (i+1/2, j, k) = (1.5, 2, 2) and probe exactly
  // there: the interpolated Ex must be the full nodal value.
  YeeGrid<double> G({4, 4, 4}, {0, 0, 0}, {1, 1, 1});
  G.Ex(1, 2, 2) = 7.0;
  YeeInterpolator<double> Interp(G);
  auto F = Interp(Vector3<double>(1.5, 2.0, 2.0), 0, 0);
  EXPECT_NEAR(F.E.X, 7.0, 1e-12);
  // Half a cell off in x splits the weight evenly.
  auto F2 = Interp(Vector3<double>(2.0, 2.0, 2.0), 0, 0);
  EXPECT_NEAR(F2.E.X, 3.5, 1e-12);
}

TEST(YeeInterpolatorTest, TscVariantAlsoPartitionsUnity) {
  YeeGrid<double> G({6, 6, 6}, {0, 0, 0}, {1, 1, 1});
  G.Ey.fill(2.0);
  YeeInterpolator<double, TscShape> Interp(G);
  auto F = Interp(Vector3<double>(2.3, 1.7, 4.1), 0, 0);
  EXPECT_NEAR(F.E.Y, 2.0, 1e-12);
}

} // namespace
