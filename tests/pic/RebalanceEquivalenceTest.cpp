//===-- tests/pic/RebalanceEquivalenceTest.cpp - Rebalance guarantees ----===//
//
// Part of the hichi-boris-dpcpp-repro project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The rebalancer's determinism contract, gated in CI as the
/// `pic_rebalance_equivalence` ctest target (pic/Rebalancer.h):
///
///  - weightedSlabBoundaries is a strict generalization of the static
///    split: uniform weights reproduce slabRange's boundaries exactly,
///    concentrated weights track the concentration, and every result is
///    a valid partition (monotone, nonempty slabs) whatever the input;
///  - when the threshold never trips (uniform Langmuir, skew ~1), a run
///    with rebalancing armed is *bit-identical* to one with it off, on
///    every backend x solver x shard count — arming the feature costs
///    nothing but the histogram pass;
///  - when repartitions DO fire (the drifting slab), all rebalanced
///    runs agree bitwise across backends (the trigger is a pure
///    function of positions, so every backend fires on the same steps),
///    the fire counts agree, and the run conserves exactly what the
///    scenario's bitwise current cancellation promises: particle count,
///    the multiset of particle states, kinetic energy, zero field
///    energy, zero net charge;
///  - a fired repartition actually moves the deposit tile plane
///    boundaries off the uniform split.
///
//===----------------------------------------------------------------------===//

#include "exec/SlabPartition.h"
#include "pic/CellListEnsemble.h"
#include "pic/Diagnostics.h"
#include "pic/PicSimulation.h"
#include "pic/Scenarios.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

using namespace hichi;
using namespace hichi::pic;

namespace {

//===----------------------------------------------------------------------===//
// weightedSlabBoundaries unit coverage
//===----------------------------------------------------------------------===//

/// Every weighted split must be a valid partition: Count+1 boundaries,
/// 0 and Items at the ends, strictly increasing (no empty slab).
void expectValidPartition(const std::vector<Index> &Bounds, Index Items,
                          Index Count) {
  ASSERT_EQ(Index(Bounds.size()), Count + 1);
  EXPECT_EQ(Bounds.front(), 0);
  EXPECT_EQ(Bounds.back(), Items);
  for (std::size_t S = 0; S + 1 < Bounds.size(); ++S)
    EXPECT_LT(Bounds[S], Bounds[S + 1]) << "empty slab " << S;
}

TEST(RebalanceEquivalenceTest, UniformWeightsReproduceTheEvenSplit) {
  // When Count divides Items the weighted and static splits are the
  // same partition; otherwise the two place the remainder differently
  // (cumulative ceiling vs front-loading) but both stay balanced to
  // within one item — which is the property the rebalancer relies on.
  for (Index Items : {8, 17, 64})
    for (Index Count : {1, 3, 4, 7}) {
      const std::vector<double> Uniform(std::size_t(Items), 1.0);
      const std::vector<Index> Bounds =
          exec::weightedSlabBoundaries(Uniform, Count);
      expectValidPartition(Bounds, Items, Count);
      for (Index S = 0; S < Count; ++S) {
        const exec::SlabRange R = exec::slabRange(Items, Count, S);
        const Index Size = Bounds[std::size_t(S) + 1] - Bounds[std::size_t(S)];
        if (Items % Count == 0) {
          EXPECT_EQ(Bounds[std::size_t(S)], R.Begin)
              << "items=" << Items << " count=" << Count << " slab=" << S;
          EXPECT_EQ(Bounds[std::size_t(S) + 1], R.End);
        }
        EXPECT_GE(Size, Items / Count) << "items=" << Items << " count="
                                       << Count << " slab=" << S;
        EXPECT_LE(Size, Items / Count + 1);
      }
    }
}

TEST(RebalanceEquivalenceTest, ConcentratedWeightsTrackTheConcentration) {
  // All the weight in planes [16, 32) of 64: with 4 slabs, the interior
  // boundaries must land inside the loaded window so each loaded slab
  // carries ~1/4 of the weight; the empty planes get swept into the
  // outermost slabs.
  std::vector<double> W(64, 0.0);
  for (int P = 16; P < 32; ++P)
    W[std::size_t(P)] = 5.0;
  const std::vector<Index> Bounds = exec::weightedSlabBoundaries(W, 4);
  expectValidPartition(Bounds, 64, 4);
  for (std::size_t S = 1; S + 1 < Bounds.size(); ++S) {
    EXPECT_GE(Bounds[S], 16);
    EXPECT_LE(Bounds[S], 32);
  }
  // Each slab's weight is within one plane's worth of the even share.
  for (std::size_t S = 0; S + 1 < Bounds.size(); ++S) {
    double Slab = 0;
    for (Index P = Bounds[S]; P < Bounds[S + 1]; ++P)
      Slab += W[std::size_t(P)];
    EXPECT_NEAR(Slab, 80.0 / 4.0, 5.0) << "slab " << S;
  }
}

TEST(RebalanceEquivalenceTest, DegenerateWeightsStillPartition) {
  // Zero total falls back to the static split; negative weights are
  // treated as zero; a single loaded plane cannot produce empty slabs.
  const std::vector<double> Zero(16, 0.0);
  const std::vector<Index> ZeroBounds = exec::weightedSlabBoundaries(Zero, 4);
  expectValidPartition(ZeroBounds, 16, 4);
  for (Index S = 0; S < 4; ++S)
    EXPECT_EQ(ZeroBounds[std::size_t(S)], exec::slabRange(16, 4, S).Begin);

  std::vector<double> OnePlane(16, -1.0);
  OnePlane[7] = 100.0;
  expectValidPartition(exec::weightedSlabBoundaries(OnePlane, 4), 16, 4);

  // Requesting more slabs than items clamps like clampSlabCount.
  const std::vector<double> Few(3, 1.0);
  const std::vector<Index> Clamped = exec::weightedSlabBoundaries(Few, 8);
  expectValidPartition(Clamped, 3, exec::clampSlabCount(3, 8));
}

//===----------------------------------------------------------------------===//
// Histogram cross-check: flat-array vs cell-list organization
//===----------------------------------------------------------------------===//

TEST(RebalanceEquivalenceTest, OccupancyHistogramMatchesCellLists) {
  const ScenarioSetup<double> S = makeDensityGradientScenario<double>();
  ParticleArrayAoS<double> Flat(Index(S.Particles.size()));
  CellListEnsemble<double> Cells(S.Grid, S.Origin, S.Step);
  for (const ParticleT<double> &P : S.Particles) {
    Flat.pushBack(P);
    Cells.addParticle(P);
  }
  const CellIndexer<double> Indexer(S.Grid, S.Origin, S.Step);
  const std::vector<double> FromArray = xPlaneOccupancy(Flat, Indexer);
  const std::vector<double> FromCells = Cells.xPlaneOccupancy();
  ASSERT_EQ(FromArray.size(), FromCells.size());
  for (std::size_t P = 0; P < FromArray.size(); ++P)
    EXPECT_EQ(FromArray[P], FromCells[P]) << "plane " << P;
  // The ramp is a ramp: later interior planes hold more particles.
  EXPECT_LT(FromArray[8], FromArray[55]);
}

//===----------------------------------------------------------------------===//
// No-op bit-equivalence: armed but never fired == disabled
//===----------------------------------------------------------------------===//

/// A 100-step uniform Langmuir run (skew ~1 forever) with every stage on
/// \p Backend; \p Threshold > 1 armed, or 0 for the control run.
std::uint64_t langmuirHash(const std::string &Backend, int Threads,
                           FieldSolverKind Solver, double Threshold,
                           long long *Fires = nullptr,
                           long long *Checks = nullptr) {
  const GridSize N{16, 4, 4};
  PicOptions<double> Options;
  Options.LightVelocity = 1.0;
  Options.SortEveryNSteps = 7;
  Options.Solver = Solver;
  Options.PushBackend = Backend;
  Options.DepositBackend = Backend;
  Options.FieldBackend = Backend;
  Options.PushThreads = Threads;
  Options.DepositThreads = Threads;
  Options.FieldThreads = Threads;
  Options.RebalanceThreshold = Threshold;
  Options.RebalanceEveryNSteps = 10;
  const int PerCell = 2;
  PicSimulation<double> Sim(N, {0, 0, 0}, {0.5, 0.5, 0.5},
                            N.count() * PerCell,
                            ParticleTypeTable<double>::natural(), Options);
  for (Index C = 0; C < N.count(); ++C) {
    const Index I = C / (N.Ny * N.Nz);
    const Index J = (C / N.Nz) % N.Ny;
    const Index K = C % N.Nz;
    for (int P = 0; P < PerCell; ++P) {
      ParticleT<double> Particle;
      Particle.Position = {(double(I) + 0.25 + 0.5 * P) * 0.5,
                           (double(J) + 0.5) * 0.5, (double(K) + 0.5) * 0.5};
      const double Vx =
          0.02 * std::sin(2.0 * constants::Pi * Particle.Position.X / 8.0);
      Particle.Momentum = {Vx / std::sqrt(1 - Vx * Vx), 0, 0};
      Particle.Weight = 0.05;
      Particle.Type = PS_Electron;
      Sim.addParticle(Particle);
    }
  }
  Sim.run(100);
  if (Fires)
    *Fires = Sim.rebalanceStats().Fires;
  if (Checks)
    *Checks = Sim.rebalanceStats().Checks;
  return picStateHash(Sim.particles(), Sim.grid());
}

TEST(RebalanceEquivalenceTest, NoOpRebalanceIsBitIdenticalToDisabled) {
  const struct {
    const char *Backend;
    int Threads;
  } Configs[] = {{"serial", 0}, {"openmp", 3}, {"sharded", 4}, {"sharded", 5}};
  for (FieldSolverKind Solver :
       {FieldSolverKind::Fdtd, FieldSolverKind::Spectral})
    for (const auto &C : Configs) {
      long long Fires = -1, Checks = 0;
      const std::uint64_t Armed =
          langmuirHash(C.Backend, C.Threads, Solver, 1.5, &Fires, &Checks);
      const std::uint64_t Off =
          langmuirHash(C.Backend, C.Threads, Solver, 0.0);
      EXPECT_EQ(Armed, Off)
          << C.Backend << " threads=" << C.Threads << " solver="
          << (Solver == FieldSolverKind::Fdtd ? "fdtd" : "spectral");
      EXPECT_EQ(Fires, 0) << C.Backend;
      EXPECT_EQ(Checks, 10) << C.Backend; // every 10th of 100 steps
    }
}

//===----------------------------------------------------------------------===//
// Fired repartitions: cross-backend bit-equivalence + exact conservation
//===----------------------------------------------------------------------===//

struct SlabRun {
  std::uint64_t Hash = 0;
  long long Fires = 0;
  double KineticEnergy = 0;
  double FieldEnergy = 0;
  Index Count = 0;
  double TotalCharge = 0;
  std::vector<std::array<double, 8>> SortedStates;
  std::vector<Index> TileBounds;
};

/// 100 steps of the drifting slab with every stage on \p Backend.
/// \p Threshold 1.3 trips on the default 10-step cadence (the slab
/// loads a quarter of the 8 evaluation blocks, skew ~4); 0 disables.
SlabRun runSlab(const std::string &Backend, int Threads, double Threshold,
                int DepositTiles = 0) {
  const ScenarioSetup<double> S = makeDriftingSlabScenario<double>();
  PicOptions<double> Options;
  Options.LightVelocity = 1.0;
  Options.SortEveryNSteps = 20;
  Options.PushBackend = Backend;
  Options.DepositBackend = Backend;
  Options.FieldBackend = Backend;
  Options.PushThreads = Threads;
  Options.DepositThreads = Threads;
  Options.FieldThreads = Threads;
  Options.DepositTiles = DepositTiles;
  Options.RebalanceThreshold = Threshold;
  PicSimulation<double> Sim(S.Grid, S.Origin, S.Step,
                            Index(S.Particles.size()), S.Types, Options);
  seedScenario(Sim, S);
  Sim.run(100);

  SlabRun Out;
  Out.Hash = picStateHash(Sim.particles(), Sim.grid());
  Out.Fires = Sim.rebalanceStats().Fires;
  Out.KineticEnergy = Sim.kineticEnergy();
  Out.FieldEnergy = Sim.fieldEnergy();
  Out.Count = Sim.particles().size();
  Out.TileBounds = Sim.depositTileBoundaries();
  auto View = Sim.particles().view();
  const ParticleTypeTable<double> &Types = Sim.types();
  for (Index I = 0; I < View.size(); ++I) {
    const ParticleT<double> P = View[I].load();
    Out.TotalCharge += Types[P.Type].Charge * P.Weight;
    Out.SortedStates.push_back({P.Position.X, P.Position.Y, P.Position.Z,
                                P.Momentum.X, P.Momentum.Y, P.Momentum.Z,
                                P.Weight, double(P.Type)});
  }
  std::sort(Out.SortedStates.begin(), Out.SortedStates.end());
  return Out;
}

TEST(RebalanceEquivalenceTest, FiredRebalanceBitIdenticalAcrossBackends) {
  const SlabRun Plain = runSlab("serial", 0, 0.0);
  const SlabRun Serial = runSlab("serial", 0, 1.3);
  const SlabRun Openmp = runSlab("openmp", 3, 1.3);
  const SlabRun Sharded4 = runSlab("sharded", 4, 1.3);
  const SlabRun Sharded5 = runSlab("sharded", 5, 1.3);

  // The trigger is a pure function of positions, so every backend must
  // fire on the same steps and land on one identical bit-state.
  EXPECT_GE(Serial.Fires, 1);
  EXPECT_EQ(Serial.Fires, Openmp.Fires);
  EXPECT_EQ(Serial.Fires, Sharded4.Fires);
  EXPECT_EQ(Serial.Fires, Sharded5.Fires);
  EXPECT_EQ(Serial.Hash, Openmp.Hash);
  EXPECT_EQ(Serial.Hash, Sharded4.Hash);
  EXPECT_EQ(Serial.Hash, Sharded5.Hash);

  // Under uniform drift the array stays x-ordered, so every rebalance
  // sort is an identity permutation and even the plain run's hash is
  // reproduced — the strongest form of "the repartition only moved
  // boundaries". (Scenarios with real fields diverge from the plain
  // run by a permutation; see the header.)
  EXPECT_EQ(Plain.Fires, 0);
  EXPECT_EQ(Serial.Hash, Plain.Hash);
}

TEST(RebalanceEquivalenceTest, FiredRebalanceConservesExactly) {
  const SlabRun Plain = runSlab("serial", 0, 0.0);
  const SlabRun Rebalanced = runSlab("sharded", 4, 1.3);
  ASSERT_GE(Rebalanced.Fires, 1);

  // No particle created or destroyed; the multiset of particle states
  // is *exactly* the plain run's (a rebalanced run is at most a
  // permutation of a non-rebalanced one).
  EXPECT_EQ(Rebalanced.Count, Plain.Count);
  EXPECT_EQ(Rebalanced.SortedStates, Plain.SortedStates);

  // The pair slab's currents cancel bitwise, so the fields never leave
  // exact zero and the kinetic energy is bit-frozen at its seed value.
  EXPECT_EQ(Rebalanced.FieldEnergy, 0.0);
  EXPECT_EQ(Rebalanced.KineticEnergy, Plain.KineticEnergy);

  // Electron–positron pairs stay array-adjacent (stable sort), so the
  // signed charge sum cancels pair by pair — exactly.
  EXPECT_EQ(Rebalanced.TotalCharge, 0.0);
}

TEST(RebalanceEquivalenceTest, FiredRepartitionMovesTileBoundaries) {
  // 4 explicit deposit tiles: the static split is {0,16,32,48,64}; the
  // slab occupies a quarter of the box, so a fired repartition must pull
  // the interior boundaries toward the occupied planes.
  const SlabRun Static = runSlab("openmp", 3, 0.0, /*DepositTiles=*/4);
  const SlabRun Rebalanced = runSlab("openmp", 3, 1.3, /*DepositTiles=*/4);
  ASSERT_GE(Rebalanced.Fires, 1);
  ASSERT_EQ(Static.TileBounds.size(), Rebalanced.TileBounds.size());
  EXPECT_NE(Static.TileBounds, Rebalanced.TileBounds);
  expectValidPartition(Rebalanced.TileBounds, 64, 4);
  // ... without perturbing the result (same hash: boundary placement is
  // bit-invisible, only the sort permutation could show, and here it is
  // the identity).
  EXPECT_EQ(Static.Hash, Rebalanced.Hash);
}

} // namespace
