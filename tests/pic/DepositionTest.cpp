//===-- tests/pic/DepositionTest.cpp - Current deposition tests ----------===//
//
// Part of the hichi-boris-dpcpp-repro project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The deposition invariants. The decisive one: Esirkepov deposition
/// satisfies the *discrete* continuity equation
///
///   (rho^{n+1} - rho^n)/dt + div J = 0
///
/// at every node, for any sub-cell move — which is what keeps Gauss's law
/// intact in the FDTD loop without divergence cleaning.
///
//===----------------------------------------------------------------------===//

#include "pic/CurrentDeposition.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace hichi;
using namespace hichi::pic;

namespace {

/// Sums a lattice.
double latticeSum(const ScalarLattice<double> &L) {
  double Sum = 0;
  const GridSize N = L.size();
  for (Index I = 0; I < N.Nx; ++I)
    for (Index J = 0; J < N.Ny; ++J)
      for (Index K = 0; K < N.Nz; ++K)
        Sum += L(I, J, K);
  return Sum;
}

TEST(ChargeDepositionTest, TotalChargeIsConserved) {
  YeeGrid<double> G({8, 8, 8}, {0, 0, 0}, {1, 1, 1});
  ScalarLattice<double> Rho(G.size());
  RandomStream<double> Rng(8);
  double Total = 0;
  for (int P = 0; P < 20; ++P) {
    double Q = Rng.uniform(-2.0, 2.0);
    Total += Q;
    depositChargeCic(Rho, G,
                     Vector3<double>(Rng.uniform(1.0, 7.0),
                                     Rng.uniform(1.0, 7.0),
                                     Rng.uniform(1.0, 7.0)),
                     Q);
  }
  // Cell volume is 1, so sum(rho) dV = total charge.
  EXPECT_NEAR(latticeSum(Rho), Total, 1e-12);
}

TEST(ChargeDepositionTest, AtNodeAllWeightOnThatNode) {
  YeeGrid<double> G({4, 4, 4}, {0, 0, 0}, {1, 1, 1});
  ScalarLattice<double> Rho(G.size());
  depositChargeCic(Rho, G, Vector3<double>(2, 1, 3), -1.5);
  EXPECT_NEAR(Rho(2, 1, 3), -1.5, 1e-14);
  EXPECT_NEAR(latticeSum(Rho), -1.5, 1e-14);
}

//===----------------------------------------------------------------------===//
// Esirkepov continuity — the core property, swept over random moves
//===----------------------------------------------------------------------===//

struct MoveCase {
  unsigned Seed;
};

class EsirkepovContinuityTest : public ::testing::TestWithParam<MoveCase> {};

TEST_P(EsirkepovContinuityTest, DiscreteContinuityHoldsEverywhere) {
  YeeGrid<double> G({8, 8, 8}, {0, 0, 0}, {1, 1, 1});
  RandomStream<double> Rng(GetParam().Seed);

  const Vector3<double> Old(Rng.uniform(2.0, 6.0), Rng.uniform(2.0, 6.0),
                            Rng.uniform(2.0, 6.0));
  const Vector3<double> Move(Rng.uniform(-0.9, 0.9), Rng.uniform(-0.9, 0.9),
                             Rng.uniform(-0.9, 0.9));
  const Vector3<double> New = Old + Move;
  const double Q = Rng.uniform(-3.0, 3.0);
  const double Dt = 0.37;

  ScalarLattice<double> RhoOld(G.size()), RhoNew(G.size());
  depositChargeCic(RhoOld, G, Old, Q);
  depositChargeCic(RhoNew, G, New, Q);
  depositCurrentEsirkepov(G, Old, New, Q, Dt);

  const GridSize N = G.size();
  for (Index I = 0; I < N.Nx; ++I)
    for (Index J = 0; J < N.Ny; ++J)
      for (Index K = 0; K < N.Nz; ++K) {
        double DivJ = (G.Jx(I, J, K) - G.Jx(I - 1, J, K)) +
                      (G.Jy(I, J, K) - G.Jy(I, J - 1, K)) +
                      (G.Jz(I, J, K) - G.Jz(I, J, K - 1));
        double DRhoDt = (RhoNew(I, J, K) - RhoOld(I, J, K)) / Dt;
        ASSERT_NEAR(DRhoDt + DivJ, 0.0, 1e-11)
            << "node " << I << "," << J << "," << K;
      }
}

INSTANTIATE_TEST_SUITE_P(RandomMoves, EsirkepovContinuityTest,
                         ::testing::Values(MoveCase{1}, MoveCase{2},
                                           MoveCase{3}, MoveCase{4},
                                           MoveCase{5}, MoveCase{6},
                                           MoveCase{7}, MoveCase{8},
                                           MoveCase{9}, MoveCase{10},
                                           MoveCase{11}, MoveCase{12}));

TEST(EsirkepovTest, StationaryParticleDepositsNoCurrent) {
  YeeGrid<double> G({4, 4, 4}, {0, 0, 0}, {1, 1, 1});
  depositCurrentEsirkepov(G, {1.3, 2.7, 0.4}, {1.3, 2.7, 0.4}, 5.0, 0.1);
  EXPECT_DOUBLE_EQ(latticeSum(G.Jx), 0.0);
  EXPECT_DOUBLE_EQ(latticeSum(G.Jy), 0.0);
  EXPECT_DOUBLE_EQ(latticeSum(G.Jz), 0.0);
}

TEST(EsirkepovTest, AxisAlignedMoveMatchesQVOverV) {
  // Total Jx integrated over the grid = q dx/dt per unit cell volume for
  // a move along x only.
  YeeGrid<double> G({8, 8, 8}, {0, 0, 0}, {1, 1, 1});
  const double Q = 2.0, Dt = 0.5, Dx = 0.6;
  depositCurrentEsirkepov(G, {3.2, 4.1, 2.9}, {3.2 + Dx, 4.1, 2.9}, Q, Dt);
  EXPECT_NEAR(latticeSum(G.Jx), Q * Dx / Dt, 1e-12);
  EXPECT_NEAR(latticeSum(G.Jy), 0.0, 1e-12);
  EXPECT_NEAR(latticeSum(G.Jz), 0.0, 1e-12);
}

TEST(DirectDepositionTest, TotalCurrentMatchesQV) {
  YeeGrid<double> G({8, 8, 8}, {0, 0, 0}, {1, 1, 1});
  const Vector3<double> V(0.3, -0.2, 0.1);
  depositCurrentDirect(G, {4.4, 3.3, 2.2}, V, 2.0);
  EXPECT_NEAR(latticeSum(G.Jx), 2.0 * V.X, 1e-12);
  EXPECT_NEAR(latticeSum(G.Jy), 2.0 * V.Y, 1e-12);
  EXPECT_NEAR(latticeSum(G.Jz), 2.0 * V.Z, 1e-12);
}

TEST(DirectDepositionTest, DoesNotConserveChargeExactly) {
  // Documenting the known limitation that motivates Esirkepov: for a
  // generic oblique move the direct scheme violates discrete continuity.
  YeeGrid<double> G({8, 8, 8}, {0, 0, 0}, {1, 1, 1});
  const Vector3<double> Old(3.3, 4.6, 2.1), New(3.9, 4.2, 2.65);
  const double Q = 1.0, Dt = 0.4;
  ScalarLattice<double> RhoOld(G.size()), RhoNew(G.size());
  depositChargeCic(RhoOld, G, Old, Q);
  depositChargeCic(RhoNew, G, New, Q);
  depositCurrentDirect(G, (Old + New) * 0.5, (New - Old) / Dt, Q);

  double MaxViolation = 0;
  const GridSize N = G.size();
  for (Index I = 0; I < N.Nx; ++I)
    for (Index J = 0; J < N.Ny; ++J)
      for (Index K = 0; K < N.Nz; ++K) {
        double DivJ = (G.Jx(I, J, K) - G.Jx(I - 1, J, K)) +
                      (G.Jy(I, J, K) - G.Jy(I, J - 1, K)) +
                      (G.Jz(I, J, K) - G.Jz(I, J, K - 1));
        double DRhoDt = (RhoNew(I, J, K) - RhoOld(I, J, K)) / Dt;
        MaxViolation = std::max(MaxViolation, std::abs(DRhoDt + DivJ));
      }
  EXPECT_GT(MaxViolation, 1e-3);
}

} // namespace
