//===-- tests/exec/ShardedBackendTest.cpp - Sharded backend units --------===//
//
// Part of the hichi-boris-dpcpp-repro project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit coverage of the sharded execution backend and the shared slab
/// partition helper it (and the deposit tiles and FDTD slabs) split
/// with: degenerate clamp cases, exact launch coverage across shard
/// counts, shard-affinity routing (one lane executes the whole launch;
/// equal affinities share a lane), cross-shard dependency ordering,
/// per-shard statistics, and the persistent first-touched arena.
///
//===----------------------------------------------------------------------===//

#include "exec/BackendRegistry.h"
#include "exec/ShardedBackend.h"
#include "exec/SlabPartition.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

using namespace hichi;
using namespace hichi::exec;

namespace {

//===----------------------------------------------------------------------===//
// The shared slab partition helper
//===----------------------------------------------------------------------===//

TEST(SlabPartitionTest, DegenerateRequestsCollapseToOneSlab) {
  EXPECT_EQ(clampSlabCount(8, 0), 1);   // the "0 = auto" spelling
  EXPECT_EQ(clampSlabCount(8, -3), 1);  // negative requests
  EXPECT_EQ(clampSlabCount(1, 100), 1); // a single plane cannot split
  EXPECT_EQ(clampSlabCount(0, 4), 1);   // empty ranges still partition
  EXPECT_EQ(clampSlabCount(-2, 4), 1);  // ...and so do negative ones
}

TEST(SlabPartitionTest, RequestsClampToItemCount) {
  EXPECT_EQ(clampSlabCount(8, 100), 8);
  EXPECT_EQ(clampSlabCount(8, 8), 8);
  EXPECT_EQ(clampSlabCount(8, 3), 3);
}

TEST(SlabPartitionTest, RangesTileTheItemSpaceContiguously) {
  for (Index Items : {Index(0), Index(1), Index(7), Index(64)})
    for (Index Requested : {Index(-1), Index(0), Index(1), Index(3),
                            Index(13), Index(100)}) {
      const Index Count = clampSlabCount(Items, Requested);
      ASSERT_GE(Count, 1);
      Index Covered = 0;
      for (Index S = 0; S < Count; ++S) {
        const SlabRange R = slabRange(Items, Count, S);
        EXPECT_EQ(R.Begin, Covered)
            << "Items=" << Items << " Count=" << Count << " Slab=" << S;
        EXPECT_GE(R.size(), 0);
        Covered = R.End;
      }
      EXPECT_EQ(Covered, Items > 0 ? Items : 0);
    }
}

TEST(SlabPartitionTest, FirstSlabsTakeTheExtraItems) {
  // 7 items in 3 slabs: 3 + 2 + 2 (the OpenMP schedule(static) split
  // every consumer — tiles, FDTD slabs, shards — must agree on).
  EXPECT_EQ(slabRange(7, 3, 0).size(), 3);
  EXPECT_EQ(slabRange(7, 3, 1).size(), 2);
  EXPECT_EQ(slabRange(7, 3, 2).size(), 2);
}

//===----------------------------------------------------------------------===//
// Sharded backend: coverage, routing, dependencies, stats, arena
//===----------------------------------------------------------------------===//

TEST(ShardedBackendTest, RegisteredWithShardCountFromThreads) {
  auto Backend = createBackend("sharded", {/*Threads=*/5, /*Grain=*/0});
  ASSERT_NE(Backend, nullptr);
  EXPECT_EQ(std::string(Backend->name()), "sharded");
  EXPECT_TRUE(Backend->isAsynchronous());
  EXPECT_FALSE(Backend->needsQueue());
  EXPECT_EQ(Backend->shardCount(), 5);
  EXPECT_EQ(Backend->concurrency(), 5);
  // Non-sharded backends report no shards.
  EXPECT_EQ(createBackend("serial")->shardCount(), 0);
  EXPECT_EQ(createBackend("openmp")->shardCount(), 0);
}

TEST(ShardedBackendTest, EveryItemVisitedExactlyOncePerStep) {
  for (int Shards : {1, 2, 5, 13}) {
    auto Backend = createBackend("sharded", {Shards, 0});
    ASSERT_NE(Backend, nullptr);
    const Index N = 4099; // prime: ragged blocks
    const int Steps = 3;
    const std::size_t Slots = static_cast<std::size_t>(N);
    std::vector<std::atomic<int>> Visits(Slots);
    auto Body = [&](Index Begin, Index End, int StepBegin, int StepEnd) {
      for (int S = StepBegin; S < StepEnd; ++S)
        for (Index I = Begin; I < End; ++I)
          ++Visits[std::size_t(I)];
    };
    StepKernel Kernel(Body, kernelIdentity<decltype(Body)>());
    RunStats Stats;
    Backend->launch({N, 0, Steps}, Kernel, {}, Stats);
    for (Index I = 0; I < N; ++I)
      ASSERT_EQ(Visits[std::size_t(I)].load(), Steps)
          << "shards=" << Shards << " item " << I;
    EXPECT_GE(Stats.HostNs, 0.0);
  }
}

TEST(ShardedBackendTest, AffinityRoutesWholeLaunchToOneLane) {
  ShardedBackend Backend({/*Threads=*/4, /*Grain=*/0});
  std::mutex Mutex;
  std::map<int, std::set<std::thread::id>> ThreadsOfLaunch;

  RunStats Stats;
  std::vector<ExecEvent> Events;
  // Kernel bodies must outlive their launches (waited below).
  using BodyFn = std::function<void(Index, Index, int, int)>;
  std::vector<std::unique_ptr<BodyFn>> Bodies;
  for (int L = 0; L < 12; ++L) {
    Bodies.push_back(std::make_unique<BodyFn>([&, L](Index, Index, int, int) {
      std::lock_guard<std::mutex> Lock(Mutex);
      ThreadsOfLaunch[L].insert(std::this_thread::get_id());
    }));
    LaunchSpec Spec;
    Spec.Items = 64;
    Spec.StepBegin = 0;
    Spec.StepEnd = 1;
    Spec.ShardAffinity = L; // routes to shard L % 4
    Events.push_back(Backend.submit(
        Spec, StepKernel(*Bodies.back(), kernelIdentity<BodyFn>()), {},
        Stats));
  }
  for (const ExecEvent &Ev : Events)
    Ev.wait();
  Backend.drain();

  // Every affinity-routed launch ran entirely on one thread, and
  // launches with equal affinity modulo the shard count share it.
  for (const auto &[L, Threads] : ThreadsOfLaunch)
    EXPECT_EQ(Threads.size(), 1u) << "launch " << L;
  for (int L = 0; L < 12; ++L)
    EXPECT_EQ(*ThreadsOfLaunch[L].begin(),
              *ThreadsOfLaunch[L % 4].begin())
        << "launch " << L << " should share shard " << L % 4 << "'s lane";
  // Four distinct lanes total.
  std::set<std::thread::id> Lanes;
  for (const auto &[L, Threads] : ThreadsOfLaunch)
    Lanes.insert(*Threads.begin());
  EXPECT_EQ(Lanes.size(), 4u);
}

TEST(ShardedBackendTest, DependenciesOrderAcrossShards) {
  ShardedBackend Backend({/*Threads=*/3, /*Grain=*/0});
  std::atomic<bool> FirstDone{false};
  std::atomic<int> OrderViolations{0};

  auto First = [&](Index, Index, int, int) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    FirstDone = true;
  };
  auto Second = [&](Index, Index, int, int) {
    if (!FirstDone.load())
      ++OrderViolations;
  };
  RunStats Stats;
  LaunchSpec FirstSpec;
  FirstSpec.Items = 1;
  FirstSpec.StepBegin = 0;
  FirstSpec.StepEnd = 1;
  FirstSpec.ShardAffinity = 1; // pinned to shard 1's lane only
  const ExecEvent FirstEv = Backend.submit(
      FirstSpec, StepKernel(First, kernelIdentity<decltype(First)>()), {},
      Stats);

  LaunchSpec SecondSpec; // partitioned across all three shards
  SecondSpec.Items = 30;
  SecondSpec.StepBegin = 0;
  SecondSpec.StepEnd = 1;
  SecondSpec.DependsOn.push_back(FirstEv);
  const ExecEvent SecondEv = Backend.submit(
      SecondSpec, StepKernel(Second, kernelIdentity<decltype(Second)>()), {},
      Stats);
  SecondEv.wait();
  EXPECT_EQ(OrderViolations.load(), 0)
      << "a dependent block ran before its dependency completed";

  // An empty ordering-only launch (the submitJoin shape) still orders
  // after its dependencies and completes.
  KernelKeepAlive Keep;
  RunStats JoinStats;
  const ExecEvent Join =
      submitJoin(Backend, {}, JoinStats, {FirstEv, SecondEv}, Keep);
  Join.wait();
  EXPECT_TRUE(Join.isComplete());
}

TEST(ShardedBackendTest, ShardStatsCountItemsAndLaunches) {
  ShardedBackend Backend({/*Threads=*/4, /*Grain=*/0});
  auto Body = [](Index, Index, int, int) {};
  StepKernel Kernel(Body, kernelIdentity<decltype(Body)>());
  RunStats Stats;
  Backend.launch({100, 0, 1}, Kernel, {}, Stats); // partitioned: 25 each
  LaunchSpec Pinned;
  Pinned.Items = 10;
  Pinned.StepBegin = 0;
  Pinned.StepEnd = 1;
  Pinned.ShardAffinity = 2;
  Backend.submit(Pinned, Kernel, {}, Stats).wait();

  const std::vector<ShardStat> ShardStats = Backend.shardStats();
  ASSERT_EQ(ShardStats.size(), 4u);
  long long TotalItems = 0, TotalLaunches = 0;
  for (const ShardStat &S : ShardStats) {
    TotalItems += S.Items;
    TotalLaunches += S.Launches;
  }
  EXPECT_EQ(TotalItems, 110);
  EXPECT_EQ(TotalLaunches, 5); // 4 partitioned blocks + 1 pinned launch
  EXPECT_EQ(ShardStats[0].Items, 25);
  EXPECT_EQ(ShardStats[2].Items, 35); // its block plus the pinned launch
  EXPECT_GT(shardImbalance(ShardStats), 1.0);
  EXPECT_LE(shardOccupancy(ShardStats, 0), 1.0);
}

TEST(ShardedBackendTest, ArenaGrowsPerShardAndStaysStable) {
  ShardedBackend Backend({/*Threads=*/2, /*Grain=*/0});
  void *A = Backend.shardArena(0, 256);
  ASSERT_NE(A, nullptr);
  // A smaller (or equal) request returns the same buffer.
  EXPECT_EQ(Backend.shardArena(0, 128), A);
  EXPECT_EQ(Backend.shardArena(0, 256), A);
  // The other shard's arena is distinct storage.
  void *B = Backend.shardArena(1, 256);
  ASSERT_NE(B, nullptr);
  EXPECT_NE(B, A);
  // Growth may move the buffer; the old one stays valid until drain()
  // (launches in flight may still read it), and the new one is
  // first-touched (zeroed) by the owning lane before later tasks run.
  void *Grown = Backend.shardArena(0, 1 << 20);
  ASSERT_NE(Grown, nullptr);
  Backend.drain();
  auto *Bytes = static_cast<unsigned char *>(Grown);
  EXPECT_EQ(Bytes[0], 0u);
  EXPECT_EQ(Bytes[(1 << 20) - 1], 0u);
}

TEST(ShardedBackendTest, AffinityChainsNeedNoEventsOnOneLane) {
  // The per-shard submission pattern the PIC stages use: a chain of
  // launches with the same affinity executes in submission order by the
  // lane's FIFO guarantee alone.
  ShardedBackend Backend({/*Threads=*/3, /*Grain=*/0});
  std::vector<int> Order; // written only by shard 1's lane
  RunStats Stats;
  std::vector<ExecEvent> Events;
  std::vector<std::unique_ptr<std::function<void(Index, Index, int, int)>>>
      Bodies;
  for (int L = 0; L < 8; ++L) {
    Bodies.push_back(
        std::make_unique<std::function<void(Index, Index, int, int)>>(
            [&Order, L](Index, Index, int, int) { Order.push_back(L); }));
    LaunchSpec Spec;
    Spec.Items = 1;
    Spec.StepBegin = 0;
    Spec.StepEnd = 1;
    Spec.ShardAffinity = 1;
    Events.push_back(Backend.submit(
        Spec,
        StepKernel(*Bodies.back(),
                   kernelIdentity<std::function<void(Index, Index, int, int)>>()),
        {}, Stats));
  }
  for (const ExecEvent &Ev : Events)
    Ev.wait();
  ASSERT_EQ(Order.size(), 8u);
  for (int L = 0; L < 8; ++L)
    EXPECT_EQ(Order[std::size_t(L)], L);
}

} // namespace
