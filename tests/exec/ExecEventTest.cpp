//===-- tests/exec/ExecEventTest.cpp - Event-based launch API ------------===//
//
// Part of the hichi-boris-dpcpp-repro project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the event-based asynchronous launch API: ExecEvent semantics
/// (safe double-wait, pending/signal, deferred finalizers), dependency
/// chaining through LaunchSpec::DependsOn (linear chains, diamond
/// graphs, cross-backend edges), submit + late wait on the asynchronous
/// pipeline backend, fused-vs-chained step-loop equivalence across every
/// registered backend x layout, and the minisycl event completion-state
/// fixes (wait on an already-completed event and double-wait are safe
/// no-ops; non-blocking GPU submits order through depends_on).
///
//===----------------------------------------------------------------------===//

#include "core/Core.h"
#include "exec/AsyncPipeline.h"
#include "exec/BackendRegistry.h"
#include "exec/StepLoop.h"
#include "fields/DipoleWave.h"
#include "minisycl/minisycl.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

using namespace hichi;
using namespace hichi::exec;

namespace {

//===----------------------------------------------------------------------===//
// ExecEvent semantics
//===----------------------------------------------------------------------===//

TEST(ExecEventTest, DefaultEventIsCompleteAndWaitIsANoOp) {
  ExecEvent E;
  EXPECT_TRUE(E.isComplete());
  E.wait();
  E.wait(); // double-wait: still a no-op
  E.signal(); // signaling a complete event: no-op
  EXPECT_TRUE(E.isComplete());
}

TEST(ExecEventTest, PendingEventCompletesOnSignalAndToleratesDoubleWait) {
  ExecEvent E = ExecEvent::pending();
  EXPECT_FALSE(E.isComplete());

  std::thread Signaler([E] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    E.signal();
  });
  E.wait();
  EXPECT_TRUE(E.isComplete());
  E.wait(); // wait after completion: safe no-op
  E.wait();
  Signaler.join();
}

TEST(ExecEventTest, DeferredFinalizerRunsExactlyOnceAcrossManyWaiters) {
  std::atomic<int> Finalized{0};
  ExecEvent E = ExecEvent::deferred([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ++Finalized;
  });
  EXPECT_FALSE(E.isComplete());

  std::vector<std::thread> Waiters;
  for (int I = 0; I < 4; ++I)
    Waiters.emplace_back([E] { E.wait(); });
  E.wait();
  for (std::thread &T : Waiters)
    T.join();
  EXPECT_EQ(Finalized.load(), 1);
  EXPECT_TRUE(E.isComplete());
  E.wait(); // and again: no second finalize
  EXPECT_EQ(Finalized.load(), 1);
}

//===----------------------------------------------------------------------===//
// Dependency chaining on the asynchronous pipeline backend
//===----------------------------------------------------------------------===//

TEST(ExecEventTest, ChainedDependenciesExecuteInOrder) {
  AsyncPipelineBackend Backend({/*Threads=*/2, /*Grain=*/0});
  RunStats Stats;
  std::mutex OrderMutex;
  std::vector<int> Order;
  auto Record = [&](int Id) {
    return [&, Id](Index, Index, int, int) {
      std::lock_guard<std::mutex> Lock(OrderMutex);
      Order.push_back(Id);
    };
  };
  auto A = Record(0), B = Record(1), C = Record(2);
  StepKernel KA(A, kernelIdentity<decltype(A)>());
  StepKernel KB(B, kernelIdentity<decltype(B)>());
  StepKernel KC(C, kernelIdentity<decltype(C)>());

  LaunchSpec SpecA;
  SpecA.Items = 1;
  SpecA.StepEnd = 1;
  ExecEvent EA = Backend.submit(SpecA, KA, {}, Stats);

  LaunchSpec SpecB = SpecA;
  SpecB.DependsOn.push_back(EA);
  ExecEvent EB = Backend.submit(SpecB, KB, {}, Stats);

  LaunchSpec SpecC = SpecA;
  SpecC.DependsOn.push_back(EB);
  ExecEvent EC = Backend.submit(SpecC, KC, {}, Stats);

  EC.wait(); // the chain is linear: waiting the tail implies the rest
  EXPECT_TRUE(EA.isComplete());
  EXPECT_TRUE(EB.isComplete());
  ASSERT_EQ(Order.size(), 3u);
  EXPECT_EQ(Order, (std::vector<int>{0, 1, 2}));
  EXPECT_GE(Stats.HostNs, 0.0);
}

TEST(ExecEventTest, DiamondDependencyGraphExecutesInTopologicalOrder) {
  // A; B and C depend on A; D depends on B and C. With two lanes, B and
  // C may overlap — only the partial order is guaranteed.
  AsyncPipelineBackend Backend({/*Threads=*/2, /*Grain=*/0});
  RunStats Stats;
  std::atomic<int> Clock{0};
  std::atomic<int> TimeA{-1}, TimeB{-1}, TimeC{-1}, TimeD{-1};
  auto Stamp = [&Clock](std::atomic<int> *Slot) {
    return [&Clock, Slot](Index, Index, int, int) { *Slot = Clock++; };
  };
  auto A = Stamp(&TimeA), B = Stamp(&TimeB), C = Stamp(&TimeC),
       D = Stamp(&TimeD);
  StepKernel KA(A, kernelIdentity<decltype(A)>());
  StepKernel KB(B, kernelIdentity<decltype(B)>());
  StepKernel KC(C, kernelIdentity<decltype(C)>());
  StepKernel KD(D, kernelIdentity<decltype(D)>());

  LaunchSpec Root;
  Root.Items = 1;
  Root.StepEnd = 1;
  ExecEvent EA = Backend.submit(Root, KA, {}, Stats);

  LaunchSpec Left = Root, Right = Root;
  Left.DependsOn.push_back(EA);
  Right.DependsOn.push_back(EA);
  ExecEvent EB = Backend.submit(Left, KB, {}, Stats);
  ExecEvent EC = Backend.submit(Right, KC, {}, Stats);

  LaunchSpec Join = Root;
  Join.DependsOn.push_back(EB);
  Join.DependsOn.push_back(EC);
  ExecEvent ED = Backend.submit(Join, KD, {}, Stats);

  ED.wait();
  EB.wait();
  EC.wait();
  ASSERT_GE(TimeA.load(), 0);
  EXPECT_LT(TimeA.load(), TimeB.load());
  EXPECT_LT(TimeA.load(), TimeC.load());
  EXPECT_GT(TimeD.load(), TimeB.load());
  EXPECT_GT(TimeD.load(), TimeC.load());
}

TEST(ExecEventTest, SubmitReturnsBeforeExecutionAndLateWaitSynchronizes) {
  AsyncPipelineBackend Backend({/*Threads=*/1, /*Grain=*/0});
  RunStats Stats;
  std::atomic<bool> Ran{false};
  auto Slow = [&](Index, Index, int, int) {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    Ran = true;
  };
  StepKernel K(Slow, kernelIdentity<decltype(Slow)>());
  LaunchSpec Spec;
  Spec.Items = 1;
  Spec.StepEnd = 1;
  ExecEvent E = Backend.submit(Spec, K, {}, Stats);
  // submit() must not have blocked for the kernel's 30 ms.
  EXPECT_FALSE(Ran.load());

  // ... unrelated host work happens here ...
  E.wait(); // late wait: synchronizes and publishes the stats
  EXPECT_TRUE(Ran.load());
  EXPECT_TRUE(E.isComplete());
  EXPECT_GT(Stats.HostNs, 0.0);
}

TEST(ExecEventTest, BlockingLaunchFacadeIsSynchronousOnAsyncBackends) {
  AsyncPipelineBackend Backend({/*Threads=*/2, /*Grain=*/0});
  RunStats Stats;
  std::atomic<bool> Ran{false};
  auto Body = [&](Index, Index, int, int) { Ran = true; };
  StepKernel K(Body, kernelIdentity<decltype(Body)>());
  Backend.launch({1, 0, 1}, K, {}, Stats);
  EXPECT_TRUE(Ran.load()); // launch() == submit().wait()
}

TEST(ExecEventTest, SynchronousBackendsWaitTheirDependencies) {
  // A dependency produced by the async backend must be honoured by a
  // synchronous backend's submit (cross-backend edge).
  AsyncPipelineBackend Async({/*Threads=*/1, /*Grain=*/0});
  auto Serial = createBackend("serial");
  ASSERT_NE(Serial, nullptr);
  RunStats Stats;
  std::atomic<int> Value{0};

  auto SlowWrite = [&](Index, Index, int, int) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    Value = 42;
  };
  StepKernel KW(SlowWrite, kernelIdentity<decltype(SlowWrite)>());
  LaunchSpec WriteSpec;
  WriteSpec.Items = 1;
  WriteSpec.StepEnd = 1;
  ExecEvent Write = Async.submit(WriteSpec, KW, {}, Stats);

  int Seen = -1;
  auto Read = [&](Index, Index, int, int) { Seen = Value.load(); };
  StepKernel KR(Read, kernelIdentity<decltype(Read)>());
  LaunchSpec ReadSpec;
  ReadSpec.Items = 1;
  ReadSpec.StepEnd = 1;
  ReadSpec.DependsOn.push_back(Write);
  Serial->submit(ReadSpec, KR, {}, Stats).wait();
  EXPECT_EQ(Seen, 42);
}

TEST(ExecEventTest, AsyncPipelineAdvertisesItsShape) {
  auto Backend = createBackend("async-pipeline", {/*Threads=*/3});
  ASSERT_NE(Backend, nullptr);
  EXPECT_TRUE(Backend->isAsynchronous());
  EXPECT_EQ(Backend->concurrency(), 3);
  EXPECT_FALSE(Backend->needsQueue());
  for (const char *Sync : {"serial", "openmp", "dpcpp", "dpcpp-numa"}) {
    auto B = createBackend(Sync);
    ASSERT_NE(B, nullptr) << Sync;
    EXPECT_FALSE(B->isAsynchronous()) << Sync;
    EXPECT_EQ(B->concurrency(), 1) << Sync;
  }
}

//===----------------------------------------------------------------------===//
// Fused vs chained step-loop equivalence
//===----------------------------------------------------------------------===//

constexpr Index N = 400;
constexpr int Steps = 18;

template <typename Array>
std::vector<ParticleT<double>> runStepLoopWith(const std::string &Backend,
                                               FusionMode Mode,
                                               int FuseSteps) {
  Array Particles(N);
  initializeBallAtRest(Particles, N, Vector3<double>::zero(), 1.0,
                       PS_Electron, /*Seed=*/1717);
  auto Types = ParticleTypeTable<double>::natural();
  auto Wave = DipoleWaveSource<double>::fromPower(1.0, 1.0, 1.0);

  auto BackendPtr = createBackend(Backend);
  EXPECT_NE(BackendPtr, nullptr) << Backend;
  minisycl::queue Q{minisycl::cpu_device()};
  ExecutionContext Ctx;
  Ctx.Queue = &Q;
  StepLoopOptions<double> Opts;
  Opts.LightVelocity = 1.0;
  Opts.FuseSteps = FuseSteps;
  Opts.Fusion = Mode;
  runStepLoop(*BackendPtr, Ctx, Particles, Wave, Types, /*Dt=*/0.05, Steps,
              Opts);

  std::vector<ParticleT<double>> Out;
  for (Index I = 0; I < N; ++I)
    Out.push_back(Particles[I].load());
  return Out;
}

void expectBitwiseEqual(const std::vector<ParticleT<double>> &A,
                        const std::vector<ParticleT<double>> &B) {
  ASSERT_EQ(A.size(), B.size());
  for (std::size_t I = 0; I < A.size(); ++I) {
    EXPECT_EQ(A[I].Position, B[I].Position) << "particle " << I;
    EXPECT_EQ(A[I].Momentum, B[I].Momentum) << "particle " << I;
    EXPECT_EQ(A[I].Gamma, B[I].Gamma) << "particle " << I;
  }
}

/// The API-redesign equivalence matrix: for every registered backend and
/// both layouts, the event-chained submission shape is bit-identical to
/// the mega-kernel shape (and to the serial unfused reference).
TEST(ExecEventTest, FusedAndChainedSubmissionAreBitIdenticalEverywhere) {
  auto Reference = runStepLoopWith<ParticleArrayAoS<double>>(
      "serial", FusionMode::MegaKernel, 1);
  for (const std::string &Backend :
       BackendRegistry::instance().names()) {
    if (Backend == "echo")
      continue; // another test's throwaway registration
    expectBitwiseEqual(Reference,
                       runStepLoopWith<ParticleArrayAoS<double>>(
                           Backend, FusionMode::MegaKernel, 4));
    expectBitwiseEqual(Reference,
                       runStepLoopWith<ParticleArrayAoS<double>>(
                           Backend, FusionMode::EventChain, 4));
    expectBitwiseEqual(Reference,
                       runStepLoopWith<ParticleArraySoA<double>>(
                           Backend, FusionMode::MegaKernel, 4));
    expectBitwiseEqual(Reference,
                       runStepLoopWith<ParticleArraySoA<double>>(
                           Backend, FusionMode::EventChain, 4));
  }
}

/// FusionMode::Auto picks the chained shape on asynchronous backends —
/// and the result is still the same bits.
TEST(ExecEventTest, AutoModeOnAsyncBackendMatchesSerial) {
  auto Reference = runStepLoopWith<ParticleArrayAoS<double>>(
      "serial", FusionMode::MegaKernel, 1);
  expectBitwiseEqual(Reference, runStepLoopWith<ParticleArrayAoS<double>>(
                                    "async-pipeline", FusionMode::Auto, 1));
}

//===----------------------------------------------------------------------===//
// minisycl completion-state fixes (the queue-level half of the redesign)
//===----------------------------------------------------------------------===//

TEST(MinisyclEventTest, WaitOnCompletedEventAndDoubleWaitAreSafeNoOps) {
  minisycl::queue Q{minisycl::cpu_device()};
  int *Data = minisycl::malloc_shared<int>(16, Q);
  minisycl::event E = Q.parallel_for(minisycl::range<1>(16),
                                     [=](minisycl::id<1> I) { Data[I] = 1; });
  // Eager CPU queue: the event is born complete...
  EXPECT_TRUE(E.is_complete());
  E.wait();     // ...wait on an already-completed event
  E.wait();     // ...and double-wait are both safe no-ops
  E.wait_and_throw();
  EXPECT_EQ(Data[7], 1);

  minisycl::event Default; // default events are complete too
  Default.wait();
  Default.wait();
  EXPECT_TRUE(Default.is_complete());
  minisycl::free(Data);
}

TEST(MinisyclEventTest, NonBlockingGpuSubmitCompletesThroughWait) {
  minisycl::queue Q{minisycl::gpu_device_p630()};
  ASSERT_TRUE(Q.async_submit()) << "simulated GPUs default to non-blocking";
  int *Data = minisycl::malloc_shared<int>(1024, Q);
  std::fill(Data, Data + 1024, 0);
  minisycl::event E = Q.parallel_for(
      minisycl::range<1>(1024), [=](minisycl::id<1> I) { Data[I] = 2; });
  E.wait();
  E.wait(); // double-wait across the async path
  EXPECT_TRUE(E.is_complete());
  EXPECT_EQ(Data[1023], 2);
  Q.wait(); // queue-level drain after per-event waits: no-op, no hang
  minisycl::free(Data);
}

TEST(MinisyclEventTest, DependsOnOrdersAcrossQueues) {
  // Producer on a non-blocking GPU queue, consumer on a second one that
  // declares the dependency: the consumer must observe the producer's
  // writes even though both submissions return immediately.
  minisycl::queue Producer{minisycl::gpu_device_p630()};
  minisycl::queue Consumer{minisycl::gpu_device_iris_xe_max()};
  int *Data = minisycl::malloc_shared<int>(256, Producer);
  int *Sum = minisycl::malloc_shared<int>(1, Consumer);
  std::fill(Data, Data + 256, 0);
  *Sum = -1;

  minisycl::event Write = Producer.submit([&](minisycl::handler &H) {
    H.parallel_for(minisycl::range<1>(256),
                   [=](minisycl::id<1> I) { Data[I] = 3; });
  });
  minisycl::event Read = Consumer.submit([&](minisycl::handler &H) {
    H.depends_on(Write);
    H.single_task([=] {
      int S = 0;
      for (int I = 0; I < 256; ++I)
        S += Data[I];
      *Sum = S;
    });
  });
  Read.wait();
  EXPECT_EQ(*Sum, 3 * 256);
  minisycl::free(Data);
  minisycl::free(Sum);
}

TEST(MinisyclEventTest, QueueWaitDrainsAllPendingSubmissions) {
  minisycl::queue Q{minisycl::cpu_device()};
  Q.set_async_submit(true); // CPU queues can opt in too
  int *Data = minisycl::malloc_shared<int>(64, Q);
  std::fill(Data, Data + 64, 0);
  for (int Round = 0; Round < 8; ++Round)
    Q.parallel_for(minisycl::range<1>(64),
                   [=](minisycl::id<1> I) { Data[I] += 1; });
  Q.wait(); // in-order drain: all eight rounds retired
  EXPECT_EQ(Data[0], 8);
  EXPECT_EQ(Data[63], 8);
  Q.set_async_submit(false); // drains again; queue back to eager
  minisycl::event E = Q.parallel_for(minisycl::range<1>(64),
                                     [=](minisycl::id<1> I) { Data[I] += 1; });
  EXPECT_TRUE(E.is_complete());
  EXPECT_EQ(Data[0], 9);
  minisycl::free(Data);
}

} // namespace
