//===-- tests/exec/StepGraphTest.cpp - Step-graph capture/replay ---------===//
//
// Part of the hichi-boris-dpcpp-repro project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The StepGraph contract at the exec layer: capture through the
/// GraphCapture decorator records node specs and dependency edges with
/// full fidelity (and the capture step still executes normally); replay
/// re-issues the DAG with only the ParamBlock rebound, without counting
/// new launches or building new specs; events from outside the capture
/// are external inputs with no edge; clear() invalidates so a driver
/// can recapture after a shape change — including when the data buffers
/// were reallocated, since recapture re-reads the new pointers.
///
//===----------------------------------------------------------------------===//

#include "exec/BackendRegistry.h"
#include "exec/StepGraph.h"
#include "minisycl/minisycl.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

using namespace hichi;
using namespace hichi::exec;

namespace {

/// Harness: a backend (plus queue when it needs one), a graph and its
/// capturing wrapper, and a kernel cache giving bodies stable addresses
/// across the graph's lifetime.
struct GraphHarness {
  explicit GraphHarness(const std::string &BackendName, int Threads = 2) {
    Backend = createBackend(BackendName, {Threads, /*Grain=*/0});
    if (Backend->needsQueue())
      Queue = std::make_unique<minisycl::queue>(minisycl::cpu_device());
    Ctx.Queue = Queue.get();
    Capture = std::make_unique<GraphCapture>(*Backend, Graph);
  }

  std::unique_ptr<ExecutionBackend> Backend;
  std::unique_ptr<minisycl::queue> Queue;
  ExecutionContext Ctx;
  StepGraph Graph;
  std::unique_ptr<GraphCapture> Capture;
  KernelCache Cache;
  RunStats Stats;
};

/// Three-node chain over \p Data through the harness's capture wrapper:
/// fill(i) -> add Scalars[0] -> scale by 2, each gated on the previous
/// node's event. The arithmetic is order-sensitive, so a replay that
/// broke the captured edges would change the result.
void captureChain(GraphHarness &H, double *Data, Index N) {
  const ParamBlock *Params = &H.Graph.params();
  ExecEvent Filled = submitCachedLaunch(
      *H.Capture, H.Ctx, H.Stats, N, 0,
      [Data](Index Begin, Index End, int, int) {
        for (Index I = Begin; I < End; ++I)
          Data[I] = double(I);
      },
      {}, H.Cache);
  ExecEvent Added = submitCachedLaunch(
      *H.Capture, H.Ctx, H.Stats, N, 0,
      [Data, Params](Index Begin, Index End, int, int) {
        for (Index I = Begin; I < End; ++I)
          Data[I] += Params->Scalars[0];
      },
      {Filled}, H.Cache);
  ExecEvent Scaled = submitCachedLaunch(
      *H.Capture, H.Ctx, H.Stats, N, 0,
      [Data](Index Begin, Index End, int, int) {
        for (Index I = Begin; I < End; ++I)
          Data[I] *= 2.0;
      },
      {Added}, H.Cache);
  Scaled.wait();
  Added.wait();
  Filled.wait();
}

TEST(StepGraphTest, CaptureRecordsNodesEdgesAndExecutes) {
  GraphHarness H("serial");
  const Index N = 64;
  std::vector<double> Data(std::size_t(N), -1.0);
  H.Graph.params().Scalars[0] = 10.0;
  captureChain(H, Data.data(), N);

  // The capture step executed normally...
  for (Index I = 0; I < N; ++I)
    EXPECT_EQ(Data[std::size_t(I)], 2.0 * (double(I) + 10.0)) << I;
  EXPECT_EQ(H.Stats.Launches, 3);
  EXPECT_EQ(H.Stats.SpecsBuilt, 3);

  // ...and the graph learned the DAG with full fidelity: three nodes in
  // submission order, a chain of two edges, the captured items and the
  // wrapped backend on every node.
  ASSERT_EQ(H.Graph.nodeCount(), 3u);
  EXPECT_EQ(H.Graph.edgeCount(), 2u);
  EXPECT_TRUE(H.Graph.node(0).Deps.empty());
  EXPECT_EQ(H.Graph.node(1).Deps, std::vector<int>{0});
  EXPECT_EQ(H.Graph.node(2).Deps, std::vector<int>{1});
  for (std::size_t I = 0; I < 3; ++I) {
    EXPECT_EQ(H.Graph.node(I).Items, N);
    EXPECT_EQ(H.Graph.node(I).Backend, H.Backend.get());
    EXPECT_NE(H.Graph.node(I).KernelType, nullptr);
  }
  // The three chain bodies are distinct lambda types.
  EXPECT_NE(H.Graph.node(0).KernelType, H.Graph.node(1).KernelType);
  EXPECT_NE(H.Graph.node(1).KernelType, H.Graph.node(2).KernelType);
}

TEST(StepGraphTest, ExternalEventsCarryNoEdge) {
  GraphHarness H("serial");
  // A dependency produced by the *base* backend directly was never
  // recorded, so it is an external input: honored at execution time but
  // not an edge of the graph.
  int Marker = 0;
  ExecEvent External = submitCachedLaunch(
      *H.Backend, H.Ctx, H.Stats, 1, 0,
      [&Marker](Index, Index, int, int) { Marker = 1; }, {}, H.Cache);
  ExecEvent Inside = submitCachedLaunch(
      *H.Capture, H.Ctx, H.Stats, 1, 0,
      [&Marker](Index, Index, int, int) { Marker += 10; }, {External},
      H.Cache);
  Inside.wait();
  EXPECT_EQ(Marker, 11);
  ASSERT_EQ(H.Graph.nodeCount(), 1u);
  EXPECT_EQ(H.Graph.edgeCount(), 0u);
}

TEST(StepGraphTest, EmptyGraphDoesNotInstantiate) {
  StepGraph Graph;
  EXPECT_FALSE(Graph.instantiate());
  EXPECT_FALSE(Graph.instantiated());
}

TEST(StepGraphTest, ReplayRebindsParamsWithoutCountingLaunches) {
  GraphHarness H("serial");
  const Index N = 32;
  std::vector<double> Data(std::size_t(N), 0.0);
  H.Graph.params().StepIndex = 0;
  H.Graph.params().Scalars[0] = 1.0;
  captureChain(H, Data.data(), N);
  ASSERT_TRUE(H.Graph.instantiate());
  ASSERT_TRUE(H.Graph.instantiated());

  const long long CapturedLaunches = H.Stats.Launches;
  const long long CapturedSpecs = H.Stats.SpecsBuilt;

  // Replays re-execute the whole chain with only the ParamBlock
  // rebound; the launch ledger stays flat (a replay is one graph issue,
  // not N counted launches) while SubmitNs keeps accruing re-issue cost.
  for (int Step = 1; Step <= 3; ++Step) {
    H.Graph.params().StepIndex = Step;
    H.Graph.params().Scalars[0] = double(Step * 100);
    H.Graph.replay(H.Ctx);
    for (Index I = 0; I < N; ++I)
      EXPECT_EQ(Data[std::size_t(I)], 2.0 * (double(I) + double(Step * 100)))
          << "step " << Step << " item " << I;
  }
  EXPECT_EQ(H.Stats.Launches, CapturedLaunches);
  EXPECT_EQ(H.Stats.SpecsBuilt, CapturedSpecs);

  // Captured step ranges are immutable (replay rebases working copies).
  EXPECT_EQ(H.Graph.node(0).StepBegin, 0);
  EXPECT_EQ(H.Graph.node(0).StepEnd, 1);
}

TEST(StepGraphTest, ReplayMatchesResubmissionOnEveryBackend) {
  for (const std::string &Name :
       {std::string("serial"), std::string("openmp"), std::string("dpcpp"),
        std::string("dpcpp-numa"), std::string("async-pipeline"),
        std::string("sharded")}) {
    GraphHarness H(Name, /*Threads=*/3);
    const Index N = 257; // ragged across any worker/shard split
    std::vector<double> Data(std::size_t(N), 0.0);
    H.Graph.params().Scalars[0] = 5.0;
    captureChain(H, Data.data(), N);
    ASSERT_TRUE(H.Graph.instantiate()) << Name;

    H.Graph.params().Scalars[0] = 7.0;
    H.Graph.replay(H.Ctx);
    for (Index I = 0; I < N; ++I)
      EXPECT_EQ(Data[std::size_t(I)], 2.0 * (double(I) + 7.0))
          << Name << " item " << I;
  }
}

TEST(StepGraphTest, ClearInvalidatesAndRecaptureRebindsNewBuffers) {
  GraphHarness H("serial");
  Index N = 16;
  auto Data = std::make_unique<std::vector<double>>(std::size_t(N), 0.0);
  H.Graph.params().Scalars[0] = 3.0;
  captureChain(H, Data->data(), N);
  ASSERT_TRUE(H.Graph.instantiate());

  // Shape change: the buffer is reallocated (different size *and*
  // address — the captured pointers are stale). The driver contract is
  // clear() + recapture, which re-reads everything.
  N = 48;
  Data = std::make_unique<std::vector<double>>(std::size_t(N), 0.0);
  H.Graph.clear();
  EXPECT_FALSE(H.Graph.instantiated());
  EXPECT_EQ(H.Graph.nodeCount(), 0u);

  H.Cache.rewind(); // same kernel sequence, slots reused in place
  captureChain(H, Data->data(), N);
  ASSERT_TRUE(H.Graph.instantiate());
  ASSERT_EQ(H.Graph.nodeCount(), 3u);
  EXPECT_EQ(H.Graph.node(0).Items, N);

  H.Graph.params().Scalars[0] = 4.0;
  H.Graph.replay(H.Ctx);
  for (Index I = 0; I < N; ++I)
    EXPECT_EQ((*Data)[std::size_t(I)], 2.0 * (double(I) + 4.0)) << I;
}

} // namespace
