//===-- tests/exec/AutotunerTest.cpp - Roofline-seeded knob planning ------===//
//
// Part of the hichi-boris-dpcpp-repro project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The autotuner contract: planning from a fixed profile is
/// deterministic, the plan's knobs are well-formed, the step-graph
/// decision follows the measured submit overhead, the hill-climb honours
/// its trial budget, and the "auto" registry entry produces the same
/// simulation bits as the serial reference (tuned knobs are
/// hash-invariant).
///
//===----------------------------------------------------------------------===//

#include "exec/Autotuner.h"
#include "exec/BackendRegistry.h"
#include "pic/Diagnostics.h"
#include "pic/PicSimulation.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

using namespace hichi;
using namespace hichi::exec;
using namespace hichi::perfmodel;

namespace {

/// A fixed 8-thread, 2-domain profile: per-core DRAM stream 12 GB/s,
/// saturated 40 GB/s, with \p SubmitNs per-launch overhead on every
/// backend the planner can choose.
MachineProfile fixedProfile(double SubmitNs) {
  MachineProfile P;
  P.Host = "fixed-host";
  P.Threads = 8;
  P.NumaDomains = 2;
  P.FmaFlopsPerCore = 8.0e9;
  P.FmaFlopsSaturated = 60.0e9;
  P.Tiers = {
      {16.0 * 1024, 60.0e9, 55.0e9, 200.0e9, 190.0e9},
      {4.0 * 1024 * 1024, 25.0e9, 24.0e9, 80.0e9, 75.0e9},
      {64.0 * 1024 * 1024, 12.0e9, 11.0e9, 40.0e9, 38.0e9},
  };
  for (const char *Backend :
       {"serial", "openmp", "dpcpp", "dpcpp-numa", "async-pipeline",
        "sharded"})
    P.Submit.push_back({Backend, SubmitNs, SubmitNs * 1.2});
  return P;
}

TEST(AutotunerTest, PlanningFromAFixedProfileIsDeterministic) {
  const MachineProfile P = fixedProfile(200.0);
  const TunePlan A = Autotuner::planFromProfile(P);
  const TunePlan B = Autotuner::planFromProfile(P);
  EXPECT_TRUE(A == B); // every field, including predictions
  EXPECT_EQ(A.ProfileHost, "fixed-host");
}

TEST(AutotunerTest, PlansAreWellFormed) {
  const TunePlan Plan = Autotuner::planFromProfile(fixedProfile(200.0));
  const BackendRegistry &Registry = BackendRegistry::instance();
  for (const StagePlan *S : {&Plan.Push, &Plan.Deposit, &Plan.Field}) {
    EXPECT_TRUE(Registry.contains(S->Backend)) << S->Backend;
    EXPECT_GE(S->Threads, 1);
    EXPECT_LE(S->Threads, 8); // never beyond the profile's cores
    EXPECT_GE(S->Tiles, 1);
    EXPECT_GT(S->PredictedNsPerItem, 0.0);
    if (S->Threads == 1)
      EXPECT_EQ(S->Backend, "serial");
    else
      EXPECT_NE(S->Backend, "serial");
  }
  EXPECT_FALSE(Plan.report().empty());
  EXPECT_NE(Plan.reportLine().find("push="), std::string::npos);
}

TEST(AutotunerTest, StepGraphFollowsMeasuredSubmitOverhead) {
  // Cheap launches: replay bookkeeping isn't worth it.
  EXPECT_FALSE(Autotuner::planFromProfile(fixedProfile(100.0)).UseStepGraph);
  // Expensive launches: collapse them with the captured graph.
  EXPECT_TRUE(Autotuner::planFromProfile(fixedProfile(20000.0)).UseStepGraph);
  // Unmeasured overhead (Submit empty): conservatively off.
  MachineProfile NoSubmit = fixedProfile(20000.0);
  NoSubmit.Submit.clear();
  EXPECT_FALSE(Autotuner::planFromProfile(NoSubmit).UseStepGraph);
}

TEST(AutotunerTest, RefineHonoursTheTrialBudgetAndKeepsImprovements) {
  TunePlan Seed = Autotuner::planFromProfile(fixedProfile(200.0));

  // A synthetic cost surface that strictly prefers fewer threads on the
  // deposit stage: the climb must walk it down and stop within budget.
  int Trials = 0;
  auto Cost = [](const TunePlan &Candidate) {
    return 1000.0 + 100.0 * Candidate.Deposit.Threads;
  };
  const TunePlan Refined = Autotuner::refine(
      Seed,
      [&](const TunePlan &Candidate) {
        ++Trials;
        return Cost(Candidate);
      },
      /*MaxTrials=*/8, &Trials);
  EXPECT_LE(Trials, 8);
  EXPECT_LE(Cost(Refined), Cost(Seed));
  EXPECT_LE(Refined.Deposit.Threads, Seed.Deposit.Threads);

  // A flat surface (nothing beats the seed by > 2%): the seed survives.
  const TunePlan Unmoved =
      Autotuner::refine(Seed, [](const TunePlan &) { return 1000.0; });
  EXPECT_TRUE(Unmoved == Seed);
}

TEST(AutotunerTest, AutoBackendIsRegisteredAndDelegates) {
  const BackendRegistry &Registry = BackendRegistry::instance();
  ASSERT_TRUE(Registry.contains("auto"));
  EXPECT_FALSE(Registry.description("auto").empty());

  // The factory returns the planned delegate itself, not a wrapper: its
  // name is a concrete strategy the registry also knows.
  auto Backend = createBackend("auto");
  ASSERT_NE(Backend, nullptr);
  EXPECT_STRNE(Backend->name(), "auto");
  EXPECT_TRUE(Registry.contains(Backend->name()));
}

/// A short Langmuir-style run with every stage on \p Backend; the
/// "auto" plan resolves against this host's measured profile, and every
/// knob it may pick is hash-invariant by the repo's cross-backend
/// guarantee — so auto vs serial must agree bit-for-bit.
std::uint64_t simulationHash(const std::string &Backend) {
  const GridSize N{8, 4, 4};
  pic::PicOptions<double> Options;
  Options.LightVelocity = 1.0;
  Options.PushBackend = Backend;
  Options.DepositBackend = Backend;
  Options.FieldBackend = Backend;
  const int PerCell = 2;
  pic::PicSimulation<double> Sim(N, {0, 0, 0}, {0.5, 0.5, 0.5},
                                 N.count() * PerCell,
                                 ParticleTypeTable<double>::natural(),
                                 Options);
  for (Index C = 0; C < N.count(); ++C) {
    const Index I = C / (N.Ny * N.Nz);
    const Index J = (C / N.Nz) % N.Ny;
    const Index K = C % N.Nz;
    for (int P = 0; P < PerCell; ++P) {
      ParticleT<double> Particle;
      Particle.Position = {(double(I) + 0.25 + 0.5 * P) * 0.5,
                           (double(J) + 0.5) * 0.5, (double(K) + 0.5) * 0.5};
      const double Vx =
          0.02 * std::sin(2.0 * constants::Pi * Particle.Position.X / 4.0);
      Particle.Momentum = {Vx / std::sqrt(1 - Vx * Vx), 0, 0};
      Particle.Weight = 0.05;
      Particle.Type = PS_Electron;
      Sim.addParticle(Particle);
    }
  }
  Sim.run(20);
  return pic::picStateHash(Sim.particles(), Sim.grid());
}

TEST(AutotunerTest, AutoBackendMatchesSerialBitForBit) {
  EXPECT_EQ(simulationHash("auto"), simulationHash("serial"));
}

TEST(AutotunerTest, ApplyTunePlanFillsOnlyDefaults) {
  TunePlan Plan = Autotuner::planFromProfile(fixedProfile(20000.0));

  pic::PicOptions<double> Defaults;
  applyTunePlan(Defaults, Plan);
  EXPECT_EQ(Defaults.PushBackend, Plan.Push.Backend);
  EXPECT_EQ(Defaults.DepositThreads, Plan.Deposit.Threads);
  EXPECT_EQ(Defaults.FieldTiles, Plan.Field.Tiles);
  EXPECT_EQ(Defaults.UseStepGraph, Plan.UseStepGraph);

  pic::PicOptions<double> Pinned;
  Pinned.PushBackend = "openmp"; // explicit: the plan must not touch it
  Pinned.DepositThreads = 3;
  applyTunePlan(Pinned, Plan);
  EXPECT_EQ(Pinned.PushBackend, "openmp");
  EXPECT_EQ(Pinned.DepositThreads, 3);
  EXPECT_EQ(Pinned.FieldBackend, Plan.Field.Backend); // default: filled
}

} // namespace
