//===-- tests/exec/BackendRegistryTest.cpp - Backend layer units ---------===//
//
// Part of the hichi-boris-dpcpp-repro project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests of the execution-backend layer itself: registry lookup and
/// enumeration semantics, launch coverage (every particle x step pair
/// exactly once, including ragged fused tails), and the queue
/// configuration save/restore that fixes the historic state leak between
/// runs sharing a queue.
///
//===----------------------------------------------------------------------===//

#include "exec/BackendRegistry.h"
#include "exec/Backends.h"
#include "minisycl/minisycl.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace hichi;
using namespace hichi::exec;

namespace {

TEST(BackendRegistryTest, BuiltinsEnumerateInRegistrationOrder) {
  std::vector<std::string> Names = BackendRegistry::instance().names();
  ASSERT_GE(Names.size(), 5u);
  EXPECT_EQ(Names[0], "serial");
  EXPECT_EQ(Names[1], "openmp");
  EXPECT_EQ(Names[2], "dpcpp");
  EXPECT_EQ(Names[3], "dpcpp-numa");
  EXPECT_EQ(Names[4], "async-pipeline");
}

TEST(BackendRegistryTest, CreateResolvesEveryRegisteredName) {
  for (const std::string &Name : BackendRegistry::instance().names()) {
    auto Backend = createBackend(Name);
    ASSERT_NE(Backend, nullptr) << Name;
    // "auto" is the one deliberate exception to name() == registry key:
    // its factory returns the planned delegate itself (exec/Autotuner.h),
    // so the created object truthfully reports the concrete strategy.
    if (Name == "auto")
      EXPECT_TRUE(BackendRegistry::instance().contains(Backend->name()));
    else
      EXPECT_EQ(Backend->name(), Name);
    EXPECT_FALSE(BackendRegistry::instance().description(Name).empty());
  }
}

TEST(BackendRegistryTest, UnknownNameReturnsNull) {
  EXPECT_EQ(createBackend("no-such-backend"), nullptr);
  EXPECT_FALSE(BackendRegistry::instance().contains("no-such-backend"));
  EXPECT_EQ(BackendRegistry::instance().description("no-such-backend"), "");
}

TEST(BackendRegistryTest, ListBackendNamesJoinsWithSeparator) {
  std::string Listing = listBackendNames("|");
  EXPECT_NE(Listing.find("serial|openmp|dpcpp|dpcpp-numa"), std::string::npos);
}

/// A trivial user-provided backend: serial execution under a new name
/// (implementing the event-based submit API synchronously).
class EchoBackend final : public ExecutionBackend {
public:
  const char *name() const override { return "echo"; }

protected:
  ExecEvent submitImpl(const LaunchSpec &Spec, const StepKernel &Kernel,
                       const ExecutionContext &, RunStats &Stats) override {
    waitForDependencies(Spec);
    Kernel(0, Spec.Items, Spec.StepBegin, Spec.StepEnd);
    Stats.HostNs += 1;
    Stats.ModeledNs += 1;
    return ExecEvent();
  }
};

TEST(BackendRegistryTest, CustomBackendRegistersOnceAndAppendsToEnumeration) {
  BackendRegistry &Registry = BackendRegistry::instance();
  const bool First = Registry.contains("echo")
                         ? true // a previous test in this process added it
                         : Registry.registerBackend(
                               "echo", "serial under another name",
                               [](const BackendConfig &) {
                                 return std::make_unique<EchoBackend>();
                               });
  EXPECT_TRUE(First);

  // Duplicate registration must be rejected and change nothing.
  EXPECT_FALSE(Registry.registerBackend("echo", "dup",
                                        [](const BackendConfig &) {
                                          return std::make_unique<EchoBackend>();
                                        }));
  EXPECT_FALSE(
      Registry.registerBackend("serial", "shadow", [](const BackendConfig &) {
        return std::make_unique<EchoBackend>();
      }));

  std::vector<std::string> Names = Registry.names();
  EXPECT_EQ(Names.back(), "echo");
  auto Backend = createBackend("echo");
  ASSERT_NE(Backend, nullptr);
  RunStats Stats;
  int Calls = 0;
  auto Body = [&](Index, Index, int, int) { ++Calls; };
  StepKernel Kernel(Body, kernelIdentity<decltype(Body)>());
  Backend->launch({10, 0, 1}, Kernel, {}, Stats);
  EXPECT_EQ(Calls, 1);
}

/// Runs \p BackendName over a 4099-particle x 7-step space in fused
/// groups of \p Fuse and asserts every (particle, step) pair is visited
/// exactly once with steps ascending per particle.
void expectFullCoverage(const std::string &BackendName, int Fuse) {
  const Index N = 4099; // prime: exercises ragged chunking
  const int Steps = 7;  // not divisible by Fuse=2,4: ragged fused tail
  auto Backend = createBackend(BackendName, {/*Threads=*/0, /*Grain=*/128});
  ASSERT_NE(Backend, nullptr);
  minisycl::queue Q{minisycl::cpu_device()};
  ExecutionContext Ctx;
  Ctx.Queue = &Q;

  const std::size_t Slots = static_cast<std::size_t>(N);
  std::vector<std::atomic<int>> Visits(Slots);
  std::vector<std::atomic<int>> LastStep(Slots);
  for (Index I = 0; I < N; ++I)
    LastStep[std::size_t(I)] = -1;

  auto Body = [&](Index Begin, Index End, int StepBegin, int StepEnd) {
    for (int S = StepBegin; S < StepEnd; ++S)
      for (Index I = Begin; I < End; ++I) {
        ++Visits[std::size_t(I)];
        int Prev = LastStep[std::size_t(I)].exchange(S);
        EXPECT_LT(Prev, S) << "steps must ascend per particle";
      }
  };
  StepKernel Kernel(Body, kernelIdentity<decltype(Body)>());

  RunStats Stats;
  for (int S = 0; S < Steps; S += Fuse)
    Backend->launch({N, S, std::min(S + Fuse, Steps)}, Kernel, Ctx, Stats);

  for (Index I = 0; I < N; ++I)
    ASSERT_EQ(Visits[std::size_t(I)].load(), Steps) << "particle " << I;
  EXPECT_GE(Stats.HostNs, 0.0);
}

class BackendCoverageTest
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(BackendCoverageTest, EveryParticleStepPairVisitedExactlyOnce) {
  const auto &[Name, Fuse] = GetParam();
  expectFullCoverage(Name, Fuse);
}

INSTANTIATE_TEST_SUITE_P(
    AllBuiltins, BackendCoverageTest,
    ::testing::Combine(::testing::Values("serial", "openmp", "dpcpp",
                                         "dpcpp-numa", "async-pipeline"),
                       ::testing::Values(1, 2, 4, 7)),
    [](const auto &Info) {
      std::string Name = std::get<0>(Info.param) + "_fuse" +
                         std::to_string(std::get<1>(Info.param));
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name;
    });

TEST(BackendQueueStateTest, DpcppNumaLaunchRestoresQueueConfiguration) {
  minisycl::queue Q{minisycl::cpu_device()};
  const minisycl::cpu_places PlacesBefore = Q.get_cpu_places();
  const int WidthBefore = Q.thread_count();
  ASSERT_EQ(PlacesBefore, minisycl::cpu_places::flat);

  auto Numa = createBackend("dpcpp-numa", {/*Threads=*/1});
  ASSERT_NE(Numa, nullptr);
  ExecutionContext Ctx;
  Ctx.Queue = &Q;
  auto Body = [](Index, Index, int, int) {};
  StepKernel Kernel(Body, kernelIdentity<decltype(Body)>());
  RunStats Stats;
  Numa->launch({64, 0, 1}, Kernel, Ctx, Stats);

  // The historic leak: numa_domains / thread_count=1 used to stick to the
  // queue and silently reconfigure the next dpcpp run.
  EXPECT_EQ(Q.get_cpu_places(), PlacesBefore);
  EXPECT_EQ(Q.thread_count(), WidthBefore);
}

TEST(BackendQueueStateTest, DpcppBackendsRequireAQueue) {
  auto Backend = createBackend("dpcpp");
  ASSERT_NE(Backend, nullptr);
  EXPECT_TRUE(Backend->needsQueue());
  EXPECT_FALSE(createBackend("serial")->needsQueue());
  EXPECT_FALSE(createBackend("openmp")->needsQueue());

  auto Body = [](Index, Index, int, int) {};
  StepKernel Kernel(Body, kernelIdentity<decltype(Body)>());
  RunStats Stats;
  EXPECT_DEATH(Backend->launch({8, 0, 1}, Kernel, {}, Stats),
               "require a minisycl::queue");
}

TEST(BackendConfigTest, CoarseTileLaunchVisitsEveryItemExactlyOnce) {
  // The deposition launch shape: a handful of coarse read-modify-write
  // items (current tiles) with GrainHint = 1 so dynamic backends schedule
  // one chunk per tile. Every backend must still cover each item exactly
  // once — that is what makes the disjoint-ownership scatter race-free.
  minisycl::queue Q{minisycl::cpu_device()};
  for (const std::string &Name : BackendRegistry::instance().names()) {
    auto Backend = createBackend(Name);
    ASSERT_NE(Backend, nullptr) << Name;
    ExecutionContext Ctx;
    Ctx.Queue = &Q;
    const Index Tiles = 13;
    std::vector<std::atomic<int>> Visits(static_cast<std::size_t>(Tiles));
    auto Body = [&](Index Begin, Index End, int, int) {
      for (Index T = Begin; T < End; ++T)
        ++Visits[std::size_t(T)];
    };
    StepKernel Kernel(Body, kernelIdentity<decltype(Body)>());
    RunStats Stats;
    LaunchSpec Spec;
    Spec.Items = Tiles;
    Spec.StepBegin = 0;
    Spec.StepEnd = 1;
    Spec.GrainHint = 1;
    Backend->launch(Spec, Kernel, Ctx, Stats);
    for (Index T = 0; T < Tiles; ++T)
      EXPECT_EQ(Visits[std::size_t(T)].load(), 1)
          << Name << " tile " << T;
  }
}

TEST(BackendRegistryTest, ConcurrentUseFromSchedulerThreadsIsSafe) {
  // The serve scheduler's workers hit the registry concurrently: each
  // job construction resolves three backends by name while tools and
  // pools may be registering. Hammer every entry point from many
  // threads; the registrations must have exactly one winner per name
  // and every lookup must resolve consistently (TSan-clean under
  // ctest's threading job when enabled).
  BackendRegistry &Registry = BackendRegistry::instance();
  const int ThreadCount = 8;
  const int Rounds = 50;
  std::atomic<int> RaceWinners{0};
  std::atomic<bool> Failed{false};

  std::vector<std::thread> Threads;
  for (int T = 0; T < ThreadCount; ++T)
    Threads.emplace_back([&, T] {
      // One name all threads race for, and one unique name per thread.
      if (Registry.registerBackend("threaded-race", "race target",
                                   [](const BackendConfig &) {
                                     return std::make_unique<EchoBackend>();
                                   }))
        ++RaceWinners;
      const std::string Mine = "threaded-" + std::to_string(T);
      if (!Registry.registerBackend(Mine, "per-thread entry",
                                    [](const BackendConfig &) {
                                      return std::make_unique<EchoBackend>();
                                    }))
        Failed = true;
      for (int R = 0; R < Rounds; ++R) {
        if (!createBackend("serial") || !createBackend(Mine) ||
            !Registry.contains("threaded-race") ||
            Registry.description("serial").empty())
          Failed = true;
        (void)Registry.names();
        (void)createBackend("no-such-backend");
      }
    });
  for (std::thread &T : Threads)
    T.join();

  EXPECT_FALSE(Failed.load());
  EXPECT_EQ(RaceWinners.load(), 1)
      << "concurrent duplicate registration must have exactly one winner";
  for (int T = 0; T < ThreadCount; ++T)
    EXPECT_TRUE(Registry.contains("threaded-" + std::to_string(T)));
}

TEST(BackendConfigTest, SerialAndStaticHandleEmptyAndTinyRanges) {
  for (const char *Name : {"serial", "openmp"}) {
    auto Backend = createBackend(Name);
    int Calls = 0;
    auto Body = [&](Index Begin, Index End, int, int) {
      EXPECT_LT(Begin, End);
      ++Calls;
    };
    StepKernel Kernel(Body, kernelIdentity<decltype(Body)>());
    RunStats Stats;
    Backend->launch({0, 0, 3}, Kernel, {}, Stats);   // empty range
    Backend->launch({5, 2, 2}, Kernel, {}, Stats);   // empty step group
    EXPECT_EQ(Calls, 0) << Name;
    Backend->launch({1, 0, 1}, Kernel, {}, Stats);   // single particle
    EXPECT_GE(Calls, 1) << Name;
  }
}

} // namespace
