//===-- tests/support/RandomTest.cpp - PRNG unit tests -------------------===//
//
// Part of the hichi-boris-dpcpp-repro project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/Random.h"

#include <gtest/gtest.h>

#include <set>

using namespace hichi;

namespace {

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  SplitMix64 A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Xoshiro256Test, DifferentSeedsDiffer) {
  Xoshiro256 A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 64; ++I)
    Same += (A() == B());
  EXPECT_LT(Same, 2);
}

TEST(Xoshiro256Test, JumpProducesDisjointStream) {
  Xoshiro256 A(7);
  Xoshiro256 B = A;
  B.jump();
  std::set<std::uint64_t> SeenA;
  for (int I = 0; I < 1000; ++I)
    SeenA.insert(A());
  for (int I = 0; I < 1000; ++I)
    EXPECT_FALSE(SeenA.count(B())) << "jumped stream overlapped base stream";
}

template <typename Real> class RandomStreamTest : public ::testing::Test {};
using RealTypes = ::testing::Types<float, double>;
TYPED_TEST_SUITE(RandomStreamTest, RealTypes);

TYPED_TEST(RandomStreamTest, Uniform01InRange) {
  RandomStream<TypeParam> Rng(123);
  for (int I = 0; I < 10000; ++I) {
    TypeParam X = Rng.uniform01();
    EXPECT_GE(X, TypeParam(0));
    EXPECT_LT(X, TypeParam(1));
  }
}

TYPED_TEST(RandomStreamTest, Uniform01MeanIsHalf) {
  RandomStream<TypeParam> Rng(9);
  double Sum = 0;
  const int N = 100000;
  for (int I = 0; I < N; ++I)
    Sum += double(Rng.uniform01());
  // Standard error ~ 1/sqrt(12 N) ~ 0.0009; 5 sigma bound.
  EXPECT_NEAR(Sum / N, 0.5, 0.005);
}

TYPED_TEST(RandomStreamTest, UniformRespectsBounds) {
  RandomStream<TypeParam> Rng(5);
  for (int I = 0; I < 1000; ++I) {
    TypeParam X = Rng.uniform(TypeParam(-3), TypeParam(7));
    EXPECT_GE(X, TypeParam(-3));
    EXPECT_LT(X, TypeParam(7));
  }
}

TYPED_TEST(RandomStreamTest, InBallStaysInBall) {
  RandomStream<TypeParam> Rng(11);
  const Vector3<TypeParam> Center(1, -2, 3);
  const TypeParam Radius = TypeParam(2.5);
  for (int I = 0; I < 2000; ++I) {
    auto P = Rng.inBall(Center, Radius);
    EXPECT_LE((P - Center).norm(), Radius * TypeParam(1.0001));
  }
}

TYPED_TEST(RandomStreamTest, InBallFillsAllOctants) {
  RandomStream<TypeParam> Rng(13);
  int Octant[8] = {};
  for (int I = 0; I < 4000; ++I) {
    auto P = Rng.inBall(Vector3<TypeParam>::zero(), TypeParam(1));
    Octant[(P.X > 0) * 4 + (P.Y > 0) * 2 + (P.Z > 0)]++;
  }
  for (int Count : Octant)
    EXPECT_GT(Count, 300) << "octant badly undersampled";
}

TYPED_TEST(RandomStreamTest, OnUnitSphereHasUnitNorm) {
  RandomStream<TypeParam> Rng(17);
  for (int I = 0; I < 1000; ++I)
    EXPECT_NEAR(Rng.onUnitSphere().norm(), TypeParam(1), TypeParam(1e-5));
}

TEST(RandomStreamTest, UniformIndexBounds) {
  RandomStream<double> Rng(3);
  std::set<std::uint64_t> Seen;
  for (int I = 0; I < 5000; ++I) {
    auto V = Rng.uniformIndex(10);
    EXPECT_LT(V, 10u);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 10u) << "some residues never drawn";
}

TEST(RandomStreamTest, SplitStreamsAreIndependent) {
  RandomStream<double> Base(21);
  auto S0 = Base.split(0);
  auto S1 = Base.split(1);
  int Same = 0;
  for (int I = 0; I < 64; ++I)
    Same += (S0.generator()() == S1.generator()());
  EXPECT_LT(Same, 2);
}

} // namespace
