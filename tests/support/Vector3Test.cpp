//===-- tests/support/Vector3Test.cpp - Vector3 unit tests ---------------===//
//
// Part of the hichi-boris-dpcpp-repro project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/Vector3.h"

#include <gtest/gtest.h>

using namespace hichi;

namespace {

template <typename Real> class Vector3TypedTest : public ::testing::Test {};
using RealTypes = ::testing::Types<float, double>;
TYPED_TEST_SUITE(Vector3TypedTest, RealTypes);

TYPED_TEST(Vector3TypedTest, DefaultConstructionIsZero) {
  Vector3<TypeParam> V;
  EXPECT_EQ(V.X, TypeParam(0));
  EXPECT_EQ(V.Y, TypeParam(0));
  EXPECT_EQ(V.Z, TypeParam(0));
}

TYPED_TEST(Vector3TypedTest, ComponentAccessors) {
  Vector3<TypeParam> V(1, 2, 3);
  EXPECT_EQ(V[0], TypeParam(1));
  EXPECT_EQ(V[1], TypeParam(2));
  EXPECT_EQ(V[2], TypeParam(3));
  V.component(1) = TypeParam(7);
  EXPECT_EQ(V.Y, TypeParam(7));
}

TYPED_TEST(Vector3TypedTest, ArithmeticOperators) {
  using V3 = Vector3<TypeParam>;
  V3 A(1, 2, 3), B(4, 5, 6);
  EXPECT_EQ(A + B, V3(5, 7, 9));
  EXPECT_EQ(B - A, V3(3, 3, 3));
  EXPECT_EQ(A * TypeParam(2), V3(2, 4, 6));
  EXPECT_EQ(TypeParam(2) * A, V3(2, 4, 6));
  EXPECT_EQ(A / TypeParam(2), V3(0.5, 1, 1.5));
  EXPECT_EQ(-A, V3(-1, -2, -3));
}

TYPED_TEST(Vector3TypedTest, CompoundAssignment) {
  using V3 = Vector3<TypeParam>;
  V3 A(1, 2, 3);
  A += V3(1, 1, 1);
  EXPECT_EQ(A, V3(2, 3, 4));
  A -= V3(2, 3, 4);
  EXPECT_EQ(A, V3(0, 0, 0));
  A = V3(1, 2, 3);
  A *= TypeParam(3);
  EXPECT_EQ(A, V3(3, 6, 9));
  A /= TypeParam(3);
  EXPECT_EQ(A, V3(1, 2, 3));
}

TYPED_TEST(Vector3TypedTest, DotProduct) {
  Vector3<TypeParam> A(1, 2, 3), B(4, -5, 6);
  EXPECT_EQ(dot(A, B), TypeParam(4 - 10 + 18));
  EXPECT_EQ(dot(A, A), A.norm2());
}

TYPED_TEST(Vector3TypedTest, CrossProductBasisVectors) {
  using V3 = Vector3<TypeParam>;
  EXPECT_EQ(cross(V3::unitX(), V3::unitY()), V3::unitZ());
  EXPECT_EQ(cross(V3::unitY(), V3::unitZ()), V3::unitX());
  EXPECT_EQ(cross(V3::unitZ(), V3::unitX()), V3::unitY());
  EXPECT_EQ(cross(V3::unitY(), V3::unitX()), -V3::unitZ());
}

TYPED_TEST(Vector3TypedTest, CrossProductIsPerpendicular) {
  Vector3<TypeParam> A(1, 2, 3), B(-2, 1, 5);
  auto C = cross(A, B);
  EXPECT_NEAR(dot(C, A), TypeParam(0), TypeParam(1e-5));
  EXPECT_NEAR(dot(C, B), TypeParam(0), TypeParam(1e-5));
}

TYPED_TEST(Vector3TypedTest, CrossProductAntiSymmetry) {
  Vector3<TypeParam> A(3, -1, 2), B(0, 4, -2);
  EXPECT_EQ(cross(A, B), -cross(B, A));
  EXPECT_EQ(cross(A, A), Vector3<TypeParam>::zero());
}

TYPED_TEST(Vector3TypedTest, NormAndNormalized) {
  Vector3<TypeParam> V(3, 4, 0);
  EXPECT_EQ(V.norm2(), TypeParam(25));
  EXPECT_NEAR(V.norm(), TypeParam(5), TypeParam(1e-6));
  auto U = V.normalized();
  EXPECT_NEAR(U.norm(), TypeParam(1), TypeParam(1e-6));
  // Zero vector maps to itself (documented NaN-avoidance behaviour).
  EXPECT_EQ(Vector3<TypeParam>::zero().normalized(),
            Vector3<TypeParam>::zero());
}

TYPED_TEST(Vector3TypedTest, MinMaxHadamard) {
  using V3 = Vector3<TypeParam>;
  V3 A(1, 5, -3), B(2, 4, -6);
  EXPECT_EQ(min(A, B), V3(1, 4, -6));
  EXPECT_EQ(max(A, B), V3(2, 5, -3));
  EXPECT_EQ(hadamard(A, B), V3(2, 20, 18));
}

TYPED_TEST(Vector3TypedTest, DistanceAndCast) {
  Vector3<TypeParam> A(0, 0, 0), B(1, 2, 2);
  EXPECT_NEAR(distance(A, B), TypeParam(3), TypeParam(1e-6));
  auto D = vectorCast<double>(B);
  EXPECT_DOUBLE_EQ(D.Y, 2.0);
}

TEST(Vector3Test, SplatAndUnits) {
  auto V = Vector3<double>::splat(2.5);
  EXPECT_EQ(V, Vector3<double>(2.5, 2.5, 2.5));
  EXPECT_EQ(Vector3<double>::unitX().norm2(), 1.0);
}

TEST(Vector3Test, PackingForAoS) {
  // The AoS layout and the perf model's byte accounting depend on these.
  EXPECT_EQ(sizeof(Vector3<float>), 12u);
  EXPECT_EQ(sizeof(Vector3<double>), 24u);
}

} // namespace
