//===-- tests/support/ArgParseTest.cpp - CLI parser tests ----------------===//
//
// Part of the hichi-boris-dpcpp-repro project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/ArgParse.h"

#include <gtest/gtest.h>

using namespace hichi;

namespace {

ArgParser makeParser() {
  ArgParser P("test tool");
  P.addOption("layout", "aos | soa", "aos");
  P.addOption("particles", "count", "1000");
  P.addOption("scale", "factor", "1.5");
  return P;
}

TEST(ArgParseTest, DefaultsApplyWhenUnset) {
  ArgParser P = makeParser();
  const char *Argv[] = {"tool"};
  ASSERT_TRUE(P.parse(1, Argv));
  EXPECT_EQ(P.getString("layout"), "aos");
  EXPECT_EQ(P.getInt("particles"), 1000);
  EXPECT_DOUBLE_EQ(*P.getDouble("scale"), 1.5);
  EXPECT_FALSE(P.seen("layout"));
}

TEST(ArgParseTest, SpaceSeparatedValues) {
  ArgParser P = makeParser();
  const char *Argv[] = {"tool", "--layout", "soa", "--particles", "42"};
  ASSERT_TRUE(P.parse(5, Argv));
  EXPECT_EQ(P.getString("layout"), "soa");
  EXPECT_EQ(P.getInt("particles"), 42);
  EXPECT_TRUE(P.seen("layout"));
}

TEST(ArgParseTest, EqualsSeparatedValues) {
  ArgParser P = makeParser();
  const char *Argv[] = {"tool", "--particles=7", "--scale=0.25"};
  ASSERT_TRUE(P.parse(3, Argv));
  EXPECT_EQ(P.getInt("particles"), 7);
  EXPECT_DOUBLE_EQ(*P.getDouble("scale"), 0.25);
}

TEST(ArgParseTest, UnknownOptionFails) {
  ArgParser P = makeParser();
  const char *Argv[] = {"tool", "--bogus", "1"};
  EXPECT_FALSE(P.parse(3, Argv));
  EXPECT_NE(P.error().find("bogus"), std::string::npos);
}

TEST(ArgParseTest, MissingValueFails) {
  ArgParser P = makeParser();
  const char *Argv[] = {"tool", "--layout"};
  EXPECT_FALSE(P.parse(2, Argv));
  EXPECT_NE(P.error().find("expects a value"), std::string::npos);
}

TEST(ArgParseTest, HelpFlagDetected) {
  ArgParser P = makeParser();
  const char *Argv[] = {"tool", "--help"};
  ASSERT_TRUE(P.parse(2, Argv));
  EXPECT_TRUE(P.helpRequested());
}

TEST(ArgParseTest, PositionalArgumentsCollected) {
  ArgParser P = makeParser();
  const char *Argv[] = {"tool", "input.csv", "--layout", "soa", "more"};
  ASSERT_TRUE(P.parse(5, Argv));
  ASSERT_EQ(P.positional().size(), 2u);
  EXPECT_EQ(P.positional()[0], "input.csv");
  EXPECT_EQ(P.positional()[1], "more");
}

TEST(ArgParseTest, MalformedNumbersReturnNullopt) {
  ArgParser P = makeParser();
  const char *Argv[] = {"tool", "--particles", "twelve"};
  ASSERT_TRUE(P.parse(3, Argv));
  EXPECT_FALSE(P.getInt("particles").has_value());
}

} // namespace
