//===-- tests/support/FftTest.cpp - FFT unit tests -----------------------===//
//
// Part of the hichi-boris-dpcpp-repro project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/Fft.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace hichi;

namespace {

using Cplx = std::complex<double>;

TEST(FftTest, PowerOfTwoPredicate) {
  EXPECT_TRUE(isPowerOfTwo(1));
  EXPECT_TRUE(isPowerOfTwo(2));
  EXPECT_TRUE(isPowerOfTwo(1024));
  EXPECT_FALSE(isPowerOfTwo(0));
  EXPECT_FALSE(isPowerOfTwo(3));
  EXPECT_FALSE(isPowerOfTwo(1000));
}

TEST(FftTest, DeltaTransformsToFlatSpectrum) {
  std::vector<Cplx> Data(16, Cplx(0));
  Data[0] = Cplx(1);
  fftInPlace(Data, false);
  for (const Cplx &X : Data) {
    EXPECT_NEAR(X.real(), 1.0, 1e-12);
    EXPECT_NEAR(X.imag(), 0.0, 1e-12);
  }
}

TEST(FftTest, ConstantTransformsToDcBin) {
  std::vector<Cplx> Data(32, Cplx(2.5));
  fftInPlace(Data, false);
  EXPECT_NEAR(Data[0].real(), 32 * 2.5, 1e-10);
  for (std::size_t K = 1; K < 32; ++K)
    EXPECT_NEAR(std::abs(Data[K]), 0.0, 1e-10);
}

TEST(FftTest, SingleModeLandsInItsBin) {
  const std::size_t N = 64;
  std::vector<double> Signal(N);
  for (std::size_t I = 0; I < N; ++I)
    Signal[I] = std::cos(2 * constants::Pi * 5 * double(I) / double(N));
  auto Spectrum = fftReal(Signal);
  // cos splits into bins 5 and N-5, each with magnitude N/2.
  EXPECT_NEAR(std::abs(Spectrum[5]), N / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(Spectrum[N - 5]), N / 2.0, 1e-9);
  for (std::size_t K = 0; K < N; ++K) {
    // Braces around the assertion: gtest macros expand to if/else.
    if (K != 5 && K != N - 5) {
      EXPECT_NEAR(std::abs(Spectrum[K]), 0.0, 1e-9) << K;
    }
  }
}

TEST(FftTest, ForwardInverseIsIdentity) {
  RandomStream<double> Rng(77);
  std::vector<Cplx> Data(128);
  for (auto &X : Data)
    X = Cplx(Rng.uniform(-1, 1), Rng.uniform(-1, 1));
  std::vector<Cplx> Original = Data;
  fftInPlace(Data, false);
  fftInPlace(Data, true);
  for (std::size_t I = 0; I < Data.size(); ++I)
    EXPECT_NEAR(std::abs(Data[I] - Original[I]), 0.0, 1e-12);
}

TEST(FftTest, ParsevalTheoremHolds) {
  RandomStream<double> Rng(78);
  std::vector<Cplx> Data(256);
  double TimeEnergy = 0;
  for (auto &X : Data) {
    X = Cplx(Rng.uniform(-1, 1), Rng.uniform(-1, 1));
    TimeEnergy += std::norm(X);
  }
  fftInPlace(Data, false);
  double FreqEnergy = 0;
  for (const auto &X : Data)
    FreqEnergy += std::norm(X);
  EXPECT_NEAR(FreqEnergy / 256.0, TimeEnergy, 1e-9 * TimeEnergy);
}

TEST(FftTest, LinearityProperty) {
  RandomStream<double> Rng(79);
  std::vector<Cplx> A(64), B(64), Sum(64);
  for (std::size_t I = 0; I < 64; ++I) {
    A[I] = Cplx(Rng.uniform(-1, 1), 0);
    B[I] = Cplx(Rng.uniform(-1, 1), 0);
    Sum[I] = A[I] + 3.0 * B[I];
  }
  fftInPlace(A, false);
  fftInPlace(B, false);
  fftInPlace(Sum, false);
  for (std::size_t I = 0; I < 64; ++I)
    EXPECT_NEAR(std::abs(Sum[I] - (A[I] + 3.0 * B[I])), 0.0, 1e-10);
}

TEST(FftTest, FrequencyHelperSignsAndWrap) {
  EXPECT_DOUBLE_EQ(fftFrequency<double>(0, 8), 0.0);
  EXPECT_NEAR(fftFrequency<double>(1, 8), 2 * constants::Pi / 8, 1e-15);
  EXPECT_NEAR(fftFrequency<double>(7, 8), -2 * constants::Pi / 8, 1e-15);
  EXPECT_NEAR(fftFrequency<double>(4, 8), constants::Pi, 1e-15);
}

TEST(Fft3DTest, RoundTripIdentity) {
  Fft3D<double> Fft(8, 4, 4);
  RandomStream<double> Rng(80);
  std::vector<Cplx> Data(Fft.size());
  for (auto &X : Data)
    X = Cplx(Rng.uniform(-1, 1), Rng.uniform(-1, 1));
  auto Original = Data;
  Fft.transform(Data, false);
  Fft.transform(Data, true);
  for (std::size_t I = 0; I < Data.size(); ++I)
    EXPECT_NEAR(std::abs(Data[I] - Original[I]), 0.0, 1e-11);
}

TEST(Fft3DTest, SeparableModeLandsInItsBin) {
  const std::size_t NX = 8, NY = 4, NZ = 4;
  Fft3D<double> Fft(NX, NY, NZ);
  std::vector<Cplx> Data(Fft.size());
  // e^{i 2 pi (2 x / NX + 1 y / NY)}: a single complex mode (2, 1, 0).
  for (std::size_t I = 0; I < NX; ++I)
    for (std::size_t J = 0; J < NY; ++J)
      for (std::size_t K = 0; K < NZ; ++K) {
        double Phase = 2 * constants::Pi *
                       (2.0 * double(I) / NX + 1.0 * double(J) / NY);
        Data[(I * NY + J) * NZ + K] = Cplx(std::cos(Phase), std::sin(Phase));
      }
  Fft.transform(Data, false);
  for (std::size_t I = 0; I < NX; ++I)
    for (std::size_t J = 0; J < NY; ++J)
      for (std::size_t K = 0; K < NZ; ++K) {
        double Expected = (I == 2 && J == 1 && K == 0) ? double(NX * NY * NZ)
                                                       : 0.0;
        EXPECT_NEAR(std::abs(Data[(I * NY + J) * NZ + K]), Expected, 1e-9);
      }
}

} // namespace
