//===-- tests/support/SupportMiscTest.cpp - Stats/timer/env/topology -----===//
//
// Part of the hichi-boris-dpcpp-repro project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/AlignedAllocator.h"
#include "support/CpuTopology.h"
#include "support/EnvVar.h"
#include "support/Json.h"
#include "support/Statistics.h"
#include "support/Timer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

using namespace hichi;

namespace {

//===----------------------------------------------------------------------===//
// Statistics
//===----------------------------------------------------------------------===//

TEST(RunningStatsTest, MeanVarianceMinMax) {
  RunningStats S;
  for (double X : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
    S.add(X);
  EXPECT_EQ(S.count(), 8u);
  EXPECT_DOUBLE_EQ(S.mean(), 5.0);
  EXPECT_NEAR(S.stddev(), 2.138, 1e-3); // sample stddev
  EXPECT_DOUBLE_EQ(S.min(), 2.0);
  EXPECT_DOUBLE_EQ(S.max(), 9.0);
}

TEST(RunningStatsTest, SingleSampleHasZeroVariance) {
  RunningStats S;
  S.add(3.5);
  EXPECT_DOUBLE_EQ(S.variance(), 0.0);
  EXPECT_DOUBLE_EQ(S.min(), 3.5);
  EXPECT_DOUBLE_EQ(S.max(), 3.5);
}

TEST(MedianTest, OddAndEvenCounts) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
  EXPECT_DOUBLE_EQ(median({42.0}), 42.0);
}

TEST(RelativeDifferenceTest, Properties) {
  EXPECT_DOUBLE_EQ(relativeDifference(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(relativeDifference(1.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(relativeDifference(1.0, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(relativeDifference(2.0, 1.0), 0.5);
}

// Empty extrema are NaN, not +-infinity: a printf of the seeded
// sentinels used to put "inf"/"-inf" in reports when a stage never ran.
TEST(RunningStatsTest, EmptyExtremaAreNaN) {
  RunningStats S;
  EXPECT_EQ(S.count(), 0u);
  EXPECT_TRUE(std::isnan(S.min()));
  EXPECT_TRUE(std::isnan(S.max()));
  S.add(1.0);
  EXPECT_FALSE(std::isnan(S.min()));
}

TEST(PercentileTest, InterpolatesSortedSamples) {
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0); // empty: defined as 0
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 1.0), 7.0);
  const std::vector<double> S = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(S, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(S, 0.25), 17.5); // between 10 and 20
  EXPECT_DOUBLE_EQ(percentile(S, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(percentile(S, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(S, -0.5), 10.0); // Q clamps to [0, 1]
  EXPECT_DOUBLE_EQ(percentile(S, 1.5), 40.0);
}

//===----------------------------------------------------------------------===//
// JSON parser hardening
//===----------------------------------------------------------------------===//

// The parser is recursive-descent: without the depth cap a hostile
// [[[[...]]]] document recursed once per bracket and walked off the
// stack (this test crashed instead of failing on the old code).
TEST(JsonParseTest, RejectsTooDeepNesting) {
  const int TooDeep = json::detail::MaxParseDepth + 1;
  std::string Doc(std::size_t(TooDeep), '[');
  Doc.append(std::size_t(TooDeep), ']');
  json::Value V;
  std::string Error;
  EXPECT_FALSE(json::parse(Doc, V, &Error));
  EXPECT_NE(Error.find("nesting too deep"), std::string::npos) << Error;
}

TEST(JsonParseTest, AcceptsNestingBelowTheCap) {
  const int Deep = json::detail::MaxParseDepth - 1;
  std::string Doc(std::size_t(Deep), '[');
  Doc.append(std::size_t(Deep), ']');
  json::Value V;
  std::string Error;
  EXPECT_TRUE(json::parse(Doc, V, &Error)) << Error;
  // Mixed object/array nesting counts every container level.
  json::Value V2;
  EXPECT_TRUE(json::parse(R"({"a": [{"b": [1, 2]}]})", V2, &Error)) << Error;
}

//===----------------------------------------------------------------------===//
// Timer / NSPS
//===----------------------------------------------------------------------===//

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch W;
  volatile double Sink = 0;
  for (int I = 0; I < 100000; ++I)
    Sink = Sink + 1.0;
  EXPECT_GT(W.elapsedNanoseconds(), 0);
  EXPECT_GE(W.elapsedSeconds(), 0.0);
}

TEST(NspsTest, MatchesThePaperDefinition) {
  // "the average time of one iteration in nanoseconds, divided by the
  // number of particles (1e7) and by the number of steps in one iteration
  // (1e3)" — Section 5.2. 10 iterations of 5.3 ms each over 1e7 x 1e3
  // particle-steps is 0.53 NSPS (the Table 2 headline cell).
  double TotalNs = 10 * 5.3e9;
  EXPECT_NEAR(nsPerParticlePerStep(TotalNs, 10, 1e7, 1e3), 0.53, 1e-9);
}

//===----------------------------------------------------------------------===//
// Aligned allocation
//===----------------------------------------------------------------------===//

TEST(AlignedAllocTest, ReturnsAlignedPointers) {
  for (std::size_t Bytes : {1u, 63u, 64u, 100u, 4096u}) {
    void *P = alignedAlloc(Bytes);
    ASSERT_NE(P, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(P) % HICHI_CACHELINE_SIZE, 0u);
    alignedFree(P);
  }
}

TEST(AlignedAllocTest, ZeroBytesGivesNull) {
  EXPECT_EQ(alignedAlloc(0), nullptr);
  alignedFree(nullptr); // must be a no-op
}

TEST(AlignedAllocatorTest, WorksWithStdVector) {
  std::vector<double, AlignedAllocator<double>> V(1000, 1.5);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(V.data()) % 64, 0u);
  EXPECT_DOUBLE_EQ(V[999], 1.5);
}

//===----------------------------------------------------------------------===//
// Environment variables
//===----------------------------------------------------------------------===//

TEST(EnvVarTest, StringRoundTrip) {
  ::setenv("HICHI_TEST_STR", "hello", 1);
  auto V = getEnvString("HICHI_TEST_STR");
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(*V, "hello");
  ::unsetenv("HICHI_TEST_STR");
  EXPECT_FALSE(getEnvString("HICHI_TEST_STR").has_value());
}

TEST(EnvVarTest, IntParsing) {
  ::setenv("HICHI_TEST_INT", "42", 1);
  EXPECT_EQ(getEnvInt("HICHI_TEST_INT"), 42);
  ::setenv("HICHI_TEST_INT", "-7", 1);
  EXPECT_EQ(getEnvInt("HICHI_TEST_INT"), -7);
  ::setenv("HICHI_TEST_INT", "not-a-number", 1);
  EXPECT_FALSE(getEnvInt("HICHI_TEST_INT").has_value());
  ::setenv("HICHI_TEST_INT", "12abc", 1);
  EXPECT_FALSE(getEnvInt("HICHI_TEST_INT").has_value());
  ::unsetenv("HICHI_TEST_INT");
}

TEST(EnvVarTest, IntParsingTrimsWhitespace) {
  // An `export HICHI_BENCH_STEPS=" 8 "`-style value must parse, not be
  // silently ignored.
  ::setenv("HICHI_TEST_INT", "  42  ", 1);
  EXPECT_EQ(getEnvInt("HICHI_TEST_INT"), 42);
  ::setenv("HICHI_TEST_INT", "\t-7\n", 1);
  EXPECT_EQ(getEnvInt("HICHI_TEST_INT"), -7);
  ::setenv("HICHI_TEST_INT", "   ", 1);
  EXPECT_FALSE(getEnvInt("HICHI_TEST_INT").has_value());
  ::unsetenv("HICHI_TEST_INT");
}

TEST(EnvVarTest, TrimmedStringAccessor) {
  ::setenv("HICHI_TEST_TRIM", "  serial ", 1);
  EXPECT_EQ(getEnvTrimmed("HICHI_TEST_TRIM"), "serial");
  ::setenv("HICHI_TEST_TRIM", "   ", 1);
  EXPECT_FALSE(getEnvTrimmed("HICHI_TEST_TRIM").has_value());
  ::unsetenv("HICHI_TEST_TRIM");
  EXPECT_FALSE(getEnvTrimmed("HICHI_TEST_TRIM").has_value());
}

TEST(EnvVarTest, BoolParsingAcceptsEverySpelling) {
  // The uniform boolean-knob grammar (MINISYCL_ASYNC_SUBMIT and every
  // HICHI_BENCH_* boolean): 0/1/true/false/on/off/yes/no,
  // case-insensitive, whitespace-trimmed; anything else keeps the
  // caller's default (nullopt).
  for (const char *Truthy : {"1", "true", "TRUE", "on", "On", "yes", " 1 "}) {
    ::setenv("HICHI_TEST_BOOL", Truthy, 1);
    EXPECT_EQ(getEnvBool("HICHI_TEST_BOOL"), true) << "'" << Truthy << "'";
  }
  for (const char *Falsy :
       {"0", "false", "False", "off", "OFF", "no", "  0\t"}) {
    ::setenv("HICHI_TEST_BOOL", Falsy, 1);
    EXPECT_EQ(getEnvBool("HICHI_TEST_BOOL"), false) << "'" << Falsy << "'";
  }
  for (const char *Junk : {"2", "maybe", "", "  "}) {
    ::setenv("HICHI_TEST_BOOL", Junk, 1);
    EXPECT_FALSE(getEnvBool("HICHI_TEST_BOOL").has_value())
        << "'" << Junk << "'";
  }
  ::unsetenv("HICHI_TEST_BOOL");
  EXPECT_FALSE(getEnvBool("HICHI_TEST_BOOL").has_value());
}

TEST(EnvVarTest, EnvEqualsExactMatch) {
  ::setenv("HICHI_TEST_PLACES", "numa_domains", 1);
  EXPECT_TRUE(envEquals("HICHI_TEST_PLACES", "numa_domains"));
  EXPECT_FALSE(envEquals("HICHI_TEST_PLACES", "NUMA_DOMAINS"));
  ::unsetenv("HICHI_TEST_PLACES");
  EXPECT_FALSE(envEquals("HICHI_TEST_PLACES", "numa_domains"));
}

//===----------------------------------------------------------------------===//
// CPU topology
//===----------------------------------------------------------------------===//

TEST(CpuTopologyTest, PaperNodeMatchesTable1) {
  auto T = CpuTopology::paperNode();
  EXPECT_EQ(T.domainCount(), 2);
  EXPECT_EQ(T.coresPerDomain(), 24);
  EXPECT_EQ(T.coreCount(), 48); // Table 1: "48 cores overall"
}

TEST(CpuTopologyTest, DomainOfCoreIsBlockwise) {
  CpuTopology T(2, 4);
  EXPECT_EQ(T.domainOfCore(0), 0);
  EXPECT_EQ(T.domainOfCore(3), 0);
  EXPECT_EQ(T.domainOfCore(4), 1);
  EXPECT_EQ(T.domainOfCore(7), 1);
}

TEST(CpuTopologyTest, CoresOfDomainAreContiguous) {
  CpuTopology T(3, 2);
  EXPECT_EQ(T.coresOfDomain(1), (std::vector<int>{2, 3}));
  EXPECT_EQ(T.coresOfDomain(2), (std::vector<int>{4, 5}));
}

TEST(CpuTopologyTest, DetectHonoursOverride) {
  ::setenv("HICHI_TOPOLOGY", "2x6", 1);
  auto T = CpuTopology::detect();
  EXPECT_EQ(T.domainCount(), 2);
  EXPECT_EQ(T.coresPerDomain(), 6);
  ::unsetenv("HICHI_TOPOLOGY");
}

TEST(CpuTopologyTest, DetectSurvivesMalformedOverride) {
  ::setenv("HICHI_TOPOLOGY", "banana", 1);
  auto T = CpuTopology::detect();
  EXPECT_GE(T.coreCount(), 1);
  ::unsetenv("HICHI_TOPOLOGY");
}

} // namespace
