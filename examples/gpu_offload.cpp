//===-- examples/gpu_offload.cpp - Device selection and layouts ----------===//
//
// Part of the hichi-boris-dpcpp-repro project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The portability story of the paper in one program: the *same* pusher
/// kernel runs on the CPU and on (simulated) Intel GPUs by changing only
/// the queue's device, and the AoS/SoA layout choice — irrelevant on the
/// CPU — decides a >1.5x factor on the GPUs (Table 3's lesson: "the
/// importance of choosing a layout on GPUs must be taken into account
/// when such porting").
///
//===----------------------------------------------------------------------===//

#include "core/Core.h"
#include "fields/DipoleWave.h"
#include "perfmodel/WorkloadModel.h"

#include <cstdio>

using namespace hichi;
using namespace hichi::perfmodel;

namespace {

template <typename Array>
double runOn(minisycl::device Dev, Layout L, Index N) {
  using Real = typename Array::Scalar;
  Array Particles(N);
  initializeBallAtRest(Particles, N, Vector3<Real>::zero(), Real(1),
                       PS_Electron);
  auto Types = ParticleTypeTable<Real>::natural();
  auto Wave = DipoleWaveSource<Real>::fromPower(1, 1, 1);

  minisycl::queue Queue{Dev};
  auto Backend = exec::createBackend("dpcpp");
  exec::ExecutionContext Ctx;
  Ctx.Queue = &Queue;
  exec::StepLoopOptions<Real> Opts;
  Opts.LightVelocity = Real(1);

  // On simulated GPUs, attach the workload profile so events report
  // device-modeled times.
  gpusim::KernelProfile Profile =
      gpuKernelProfile(Scenario::AnalyticalFields, L, Precision::Single);
  if (Dev.is_gpu())
    Ctx.GpuWorkload = &Profile;

  // Warmup step: absorbs the (modeled) JIT compilation of the kernel at
  // first launch — the paper's first-iteration effect (Section 5.3).
  exec::runStepLoop(*Backend, Ctx, Particles, Wave, Types, Real(0.01), 1,
                    Opts);
  auto Stats = exec::runStepLoop(*Backend, Ctx, Particles, Wave, Types,
                                 Real(0.01), 20, Opts);
  return Stats.ModeledNs / double(N) / 20.0;
}

} // namespace

int main() {
  const Index N = 100000;
  std::printf("One kernel, three devices, two layouts (NSPS, analytical "
              "fields, float)\n\n");
  std::printf("%-40s %-12s %-12s\n", "device", "AoS", "SoA");
  for (minisycl::device Dev : minisycl::device::get_devices()) {
    double AoS = runOn<ParticleArrayAoS<float>>(Dev, Layout::AoS, N);
    double SoA = runOn<ParticleArraySoA<float>>(Dev, Layout::SoA, N);
    std::printf("%-40s %-12.2f %-12.2f %s\n", Dev.name().c_str(), AoS, SoA,
                Dev.is_gpu() ? "(device-modeled time)" : "(measured here)");
  }
  std::printf("\nNote how the AoS/SoA gap opens up on the GPUs: strided "
              "particle records waste memory transactions that the CPUs' "
              "caches absorb.\n");
  return 0;
}
