//===-- examples/radiative_trapping.cpp - Extreme-intensity regime -------===//
//
// Part of the hichi-boris-dpcpp-repro project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Anomalous radiative trapping (the paper's Ref. [25], Gonoskov et al.
/// PRL 113, 014801): the paper's benchmark deliberately sits at
/// P = 0.1 PW where "radiative trapping effects are absent" — at
/// multi-PW powers the radiation-reaction force reverses the escape
/// dynamics, pulling electrons *into* the high-field focal region
/// instead of expelling them.
///
/// This example runs the same escape study as examples/dipole_escape at
/// a 100x higher power (10 PW class), once with the plain Boris pusher
/// and once with the Landau-Lifshitz radiation-reaction adaptor, and
/// prints the retained fraction side by side.
///
//===----------------------------------------------------------------------===//

#include "core/Core.h"
#include "core/RadiationReaction.h"
#include "fields/DipoleWave.h"

#include <cstdio>

using namespace hichi;

namespace {

struct EscapeCurve {
  std::vector<double> InsideFraction;
  double MaxGamma = 1;
};

template <typename Pusher>
EscapeCurve runEscape(double PowerErg, Index N, int Periods) {
  const double Lambda = dipole_benchmark::Wavelength;
  const double Period = 2 * constants::Pi / dipole_benchmark::WaveFrequency;
  const int StepsPerPeriod = 200; // finer than T/100: strong-field orbits
  const double Dt = Period / StepsPerPeriod;

  ParticleArraySoA<double> Particles(N);
  initializeBallAtRest(Particles, N, Vector3<double>::zero(), 0.6 * Lambda,
                       PS_Electron);
  auto Types = ParticleTypeTable<double>::cgs();
  auto Wave = DipoleWaveSource<double>::fromPower(
      PowerErg, dipole_benchmark::WaveFrequency, constants::LightVelocity);

  auto Backend = exec::createBackend("openmp");
  exec::StepLoopOptions<double> Opts;

  EscapeCurve Curve;
  for (int P = 0; P <= Periods; ++P) {
    Index Inside = 0;
    for (Index I = 0; I < N; ++I) {
      if (Particles[I].position().norm() < Lambda)
        ++Inside;
      Curve.MaxGamma = std::max(Curve.MaxGamma, double(Particles[I].gamma()));
    }
    Curve.InsideFraction.push_back(double(Inside) / double(N));
    if (P == Periods)
      break;
    Opts.StartTime = double(P) * Period;
    exec::runStepLoop<Pusher>(*Backend, /*Ctx=*/{}, Particles, Wave, Types,
                              Dt, StepsPerPeriod, Opts);
  }
  return Curve;
}

} // namespace

int main(int Argc, char **Argv) {
  const Index N = Argc > 1 ? Index(std::atoll(Argv[1])) : 4000;
  const int Periods = Argc > 2 ? std::atoi(Argv[2]) : 6;
  // 10 PW = 1e23 erg/s: the regime of the paper's Refs. [21, 25].
  const double Power = 1.0e23;

  std::printf("Radiative trapping at 10 PW (paper Ref. [25] regime); "
              "%lld electrons, fraction within 1 lambda of the focus:\n\n",
              (long long)N);

  auto Plain = runEscape<BorisPusher>(Power, N, Periods);
  auto WithRR =
      runEscape<RadiationReactionPusher<BorisPusher>>(Power, N, Periods);

  std::printf("%-8s %-22s %-22s\n", "t / T", "Boris (no RR)",
              "Boris + Landau-Lifshitz");
  for (int P = 0; P <= Periods; ++P)
    std::printf("%-8d %-22.3f %-22.3f\n", P,
                Plain.InsideFraction[std::size_t(P)],
                WithRR.InsideFraction[std::size_t(P)]);

  std::printf("\nmax gamma reached: %.0f (no RR) vs %.0f (with RR)\n",
              Plain.MaxGamma, WithRR.MaxGamma);
  std::printf("\nWith radiation reaction the electrons shed the energy "
              "that would eject them and stay trapped near the focus — "
              "the effect absent by design at the paper's 0.1 PW "
              "benchmark point (compare examples/dipole_escape).\n");
  return 0;
}
