//===-- examples/quickstart.cpp - 60-second tour of the API --------------===//
//
// Part of the hichi-boris-dpcpp-repro project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quickstart: build an ensemble, pick a field, push particles with the
/// Boris method through the miniSYCL (DPC++-style) runner, and read the
/// results — the whole public API in one page. Units here are natural
/// (c = 1, m_e = 1, |e| = 1) to keep numbers readable.
///
//===----------------------------------------------------------------------===//

#include "core/Core.h"

#include <cstdio>

using namespace hichi;

int main() {
  // 1. An ensemble of 1000 electrons in a ball, at rest. Try swapping
  //    ParticleArrayAoS for ParticleArraySoA — nothing else changes.
  const Index N = 1000;
  ParticleArrayAoS<double> Particles(N);
  initializeBallAtRest(Particles, N, Vector3<double>::zero(), /*Radius=*/1.0,
                       PS_Electron);

  // 2. A field source: uniform B along z plus a small E along x. Any
  //    trivially copyable callable (position, time, index) -> {E, B} works.
  UniformFieldSource<double> Field{{{0.05, 0, 0}, {0, 0, 1.0}}};

  // 3. The species table (masses/charges indexed by Particle::Type).
  auto Types = ParticleTypeTable<double>::natural();

  // 4. Run 500 Boris steps through the DPC++-style execution backend,
  //    resolved by name from the registry (try "serial", "openmp" or
  //    "dpcpp-numa" — results are bit-identical by construction).
  minisycl::queue Queue; // default device; MINISYCL_DEVICE=p630 to "offload"
  auto Backend = exec::createBackend("dpcpp");
  exec::ExecutionContext Ctx;
  Ctx.Queue = &Queue;
  exec::StepLoopOptions<double> Options;
  Options.LightVelocity = 1.0;
  RunStats Stats =
      exec::runStepLoop(*Backend, Ctx, Particles, Field, Types, /*Dt=*/0.01,
                        /*NumSteps=*/500, Options);

  // 5. Inspect the results through proxies.
  double MeanGamma = 0;
  for (Index I = 0; I < N; ++I)
    MeanGamma += Particles[I].gamma();
  MeanGamma /= double(N);

  std::printf("pushed %lld electrons x 500 steps on '%s'\n", (long long)N,
              Queue.get_device().name().c_str());
  std::printf("mean gamma after the run: %.6f\n", MeanGamma);
  std::printf("kernel time: %.2f ms (%.2f ns per particle-step)\n",
              Stats.HostNs / 1e6, Stats.HostNs / double(N) / 500.0);
  std::printf("first particle: p = (%.4f, %.4f, %.4f), r = (%.4f, %.4f, "
              "%.4f)\n",
              Particles[0].momentum().X, Particles[0].momentum().Y,
              Particles[0].momentum().Z, Particles[0].position().X,
              Particles[0].position().Y, Particles[0].position().Z);
  return 0;
}
