//===-- examples/pic_langmuir.cpp - Full PIC: plasma oscillation ---------===//
//
// Part of the hichi-boris-dpcpp-repro project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The full self-consistent PIC loop (paper Section 2): FDTD Maxwell
/// solver + Boris pusher + Esirkepov current deposition, demonstrated on
/// the textbook cold Langmuir oscillation. A uniform electron plasma gets
/// a sinusoidal velocity perturbation; the space-charge field oscillates
/// at the plasma frequency omega_p = sqrt(4 pi n e^2 / m). The example
/// prints the field-energy trace and the measured vs analytic frequency.
///
//===----------------------------------------------------------------------===//

#include "pic/PicSimulation.h"

#include <cstdio>
#include <vector>

using namespace hichi;
using namespace hichi::pic;

int main() {
  // Natural units (c = m = |e| = 1); weight chosen so omega_p = 1.
  const GridSize N{32, 4, 4};
  const Vector3<double> Step(0.5, 0.5, 0.5);
  const double BoxLength = double(N.Nx) * Step.X;
  const double Volume = BoxLength * 2.0 * 2.0;
  const int PerCell = 4;
  const Index NumParticles = N.count() * PerCell;
  const double Weight =
      Volume / (4.0 * constants::Pi * double(NumParticles));

  PicOptions<double> Options;
  Options.LightVelocity = 1.0;
  Options.SortEveryNSteps = 100;
  // Route the interpolate+push stage through a registered execution
  // backend — the same layer the standalone pusher benchmarks use.
  Options.PushBackend = "openmp";
  PicSimulation<double> Sim(N, {0, 0, 0}, Step, NumParticles,
                            ParticleTypeTable<double>::natural(), Options);

  const double V0 = 0.02;
  const double K = 2.0 * constants::Pi / BoxLength;
  for (Index C = 0; C < N.count(); ++C) {
    Index I = C / (N.Ny * N.Nz);
    Index J = (C / N.Nz) % N.Ny;
    Index K3 = C % N.Nz;
    for (int P = 0; P < PerCell; ++P) {
      ParticleT<double> Particle;
      Particle.Position = {(double(I) + (P + 0.5) / PerCell) * Step.X,
                           (double(J) + 0.5) * Step.Y,
                           (double(K3) + 0.5) * Step.Z};
      double Vx = V0 * std::sin(K * Particle.Position.X);
      Particle.Momentum = {Vx / std::sqrt(1 - Vx * Vx), 0, 0};
      Particle.Weight = Weight;
      Particle.Type = PS_Electron;
      Sim.addParticle(Particle);
    }
  }

  std::printf("Cold Langmuir oscillation: %lld macro-electrons on a "
              "%lldx%lldx%lld grid, omega_p = 1\n\n",
              (long long)NumParticles, (long long)N.Nx, (long long)N.Ny,
              (long long)N.Nz);

  // Run two plasma periods; record the field-energy trace and locate its
  // maxima (the E energy peaks twice per plasma period).
  const double Dt = Sim.timeStep();
  const int TotalSteps = int(2.0 * 2.0 * constants::Pi / Dt);
  std::vector<double> Energy;
  for (int S = 0; S < TotalSteps; ++S) {
    Sim.step();
    Energy.push_back(Sim.fieldEnergy());
  }

  std::printf("%-10s %-14s\n", "t", "field energy");
  for (int S = 9; S < TotalSteps; S += 20)
    std::printf("%-10.2f %-14.4e\n", (S + 1) * Dt, Energy[std::size_t(S)]);

  // Peak-to-peak spacing of the energy trace = half the plasma period.
  std::vector<double> PeakTimes;
  for (int S = 1; S + 1 < TotalSteps; ++S)
    if (Energy[size_t(S)] > Energy[size_t(S - 1)] &&
        Energy[size_t(S)] >= Energy[size_t(S + 1)] &&
        Energy[size_t(S)] > 0.2 * *std::max_element(Energy.begin(),
                                                    Energy.end()))
      PeakTimes.push_back((S + 1) * Dt);
  if (PeakTimes.size() >= 2) {
    double MeanSpacing =
        (PeakTimes.back() - PeakTimes.front()) / double(PeakTimes.size() - 1);
    double MeasuredOmega = constants::Pi / MeanSpacing;
    std::printf("\nmeasured omega_p = %.3f (analytic: 1.000, error %.1f%%)\n",
                MeasuredOmega, 100.0 * std::abs(MeasuredOmega - 1.0));
  } else {
    std::printf("\n(not enough energy peaks found to fit omega_p)\n");
  }
  std::printf("energy exchange: kinetic %.3e <-> field %.3e (erg-equivalents)\n",
              Sim.kineticEnergy(), Sim.fieldEnergy());
  std::printf("push stage ran on the '%s' backend: %.2f ms total\n",
              Sim.pushBackend().name(), Sim.pushStats().HostNs / 1e6);
  return 0;
}
