//===-- examples/pic_langmuir.cpp - Full PIC: plasma oscillation ---------===//
//
// Part of the hichi-boris-dpcpp-repro project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The full self-consistent PIC loop (paper Section 2): FDTD Maxwell
/// solver + Boris pusher + Esirkepov current deposition, demonstrated on
/// the textbook cold Langmuir oscillation. A uniform electron plasma gets
/// a sinusoidal velocity perturbation; the space-charge field oscillates
/// at the plasma frequency omega_p = sqrt(4 pi n e^2 / m). The example
/// prints the field-energy trace and the measured vs analytic frequency.
///
/// All three backend-parallel PIC stages are configurable from the
/// command line, and the final state hash is backend-independent — swap
/// --push-backend / --deposit-backend / --field-backend (or any tile
/// knob) and the hash must not move (ci/run.sh checks exactly that):
///
/// \code
///   pic_langmuir --push-backend dpcpp --deposit-backend openmp
///   pic_langmuir --deposit-backend dpcpp-numa --deposit-tiles 8 --steps 50
///   pic_langmuir --field-backend openmp --field-tiles 5 --solver spectral
///   pic_langmuir --list-runners
/// \endcode
///
//===----------------------------------------------------------------------===//

#include "pic/Diagnostics.h"
#include "pic/PicSimulation.h"
#include "support/ArgParse.h"

#include <cstdio>
#include <vector>

using namespace hichi;
using namespace hichi::pic;

int main(int Argc, char **Argv) {
  ArgParser Args("pic_langmuir: cold Langmuir oscillation through the full "
                 "PIC loop, with both parallel stages on configurable "
                 "execution backends");
  Args.addOption("push-backend", "exec backend of the interpolate+push stage",
                 "openmp");
  Args.addOption("deposit-backend",
                 "exec backend of the current-deposition stage", "openmp");
  Args.addOption("threads", "push worker threads (0 = all)", "0");
  Args.addOption("deposit-threads", "deposit worker threads (0 = all)", "0");
  Args.addOption("deposit-tiles",
                 "current tiles (x-slabs) for the deposit stage (0 = auto)",
                 "0");
  Args.addOption("pipeline-chunks",
                 "ensemble chunks of the async precalc/push pipeline "
                 "(0 = auto; only used by asynchronous push backends)",
                 "0");
  Args.addOption("field-backend",
                 "exec backend of the Maxwell field-solve stage", "openmp");
  Args.addOption("field-threads", "field-solve worker threads (0 = all)",
                 "0");
  Args.addOption("field-tiles",
                 "field-solve tiles: x-slabs for FDTD, k-space chunks for "
                 "spectral (0 = auto)",
                 "0");
  Args.addOption("solver", "Maxwell solver: fdtd or spectral", "fdtd");
  Args.addOption("shards",
                 "partition the run into this many persistent shards: every "
                 "stage whose backend flag was not given explicitly runs on "
                 "the sharded backend with this shard count (0 = off; "
                 "explicit --*-backend flags win)",
                 "0");
  Args.addOption("steps", "time steps to run (0 = two plasma periods)", "0");
  Args.addOption("rebalance",
                 "occupancy-skew threshold of the between-steps rebalancer "
                 "(pic/Rebalancer.h; 0 = off). The uniform Langmuir ensemble "
                 "never trips a threshold > 1, so enabling this here "
                 "demonstrates the no-op bit-equivalence guarantee",
                 "0");
  Args.addOption("rebalance-every", "steps between rebalance skew checks",
                 "10");
  Args.addFlag("moving-window",
               "slide the simulation window along +x (pic/YeeGrid.h ring "
               "window): retire particles at the trailing edge, inject the "
               "same uniform plasma at the leading edge. FDTD only");
  Args.addOption("window-speed",
                 "moving-window speed in units of c (with --moving-window)",
                 "1");
  Args.addOption("checkpoint-every",
                 "save a full-state checkpoint (particles + fields + step "
                 "index; core/Checkpoint.h) every N steps (0 = off)",
                 "0");
  Args.addOption("checkpoint-file", "checkpoint file path",
                 "langmuir.ckpt");
  Args.addOption("restore",
                 "restore from this checkpoint file before stepping: the "
                 "run continues from the saved step index and must land on "
                 "the same final state hash as an uninterrupted run",
                 "");
  Args.addFlag("graph", "capture the five-stage step's launch DAG on the "
                        "first step and replay it on every later one "
                        "(bit-identical; see exec/StepGraph.h)");
  Args.addFlag("tune",
               "pick backend/thread/tile knobs from the host's measured "
               "machine profile (exec/Autotuner.h) for every stage whose "
               "flag was not given explicitly; prints the chosen knobs. "
               "Tuned knobs are hash-invariant");
  Args.addOption("tune-trials",
                 "measured hill-climb trials refining the roofline seed "
                 "(short scratch runs; 0 = roofline seed only)",
                 "0");
  Args.addFlag("stats", "print per-step submit-overhead counters (launches, "
                        "specs built, microseconds inside submit) per stage");
  Args.addFlag("list-runners", "list registered execution backends and exit");
  if (!Args.parse(Argc, Argv)) {
    std::fprintf(stderr, "error: %s\n", Args.error().c_str());
    return 1;
  }
  if (Args.helpRequested()) {
    Args.printHelp(Argv[0]);
    return 0;
  }
  if (Args.getFlag("list-runners")) {
    auto &Registry = exec::BackendRegistry::instance();
    std::printf("registered execution backends:\n");
    for (const std::string &Name : Registry.names())
      std::printf("  %-12s %s\n", Name.c_str(),
                  Registry.description(Name).c_str());
    return 0;
  }

  // Natural units (c = m = |e| = 1); weight chosen so omega_p = 1.
  const GridSize N{32, 4, 4};
  const Vector3<double> Step(0.5, 0.5, 0.5);
  const double BoxLength = double(N.Nx) * Step.X;
  const double Volume = BoxLength * 2.0 * 2.0;
  const int PerCell = 4;
  const Index NumParticles = N.count() * PerCell;
  const double Weight =
      Volume / (4.0 * constants::Pi * double(NumParticles));

  PicOptions<double> Options;
  Options.LightVelocity = 1.0;
  Options.SortEveryNSteps = 100;
  // Route both parallel PIC stages through registered execution
  // backends — the same layer the standalone pusher benchmarks use.
  Options.PushBackend = Args.getString("push-backend");
  Options.PushThreads = int(Args.getInt("threads").value_or(0));
  Options.DepositBackend = Args.getString("deposit-backend");
  Options.DepositThreads = int(Args.getInt("deposit-threads").value_or(0));
  Options.DepositTiles = int(Args.getInt("deposit-tiles").value_or(0));
  Options.PushPipelineChunks =
      int(Args.getInt("pipeline-chunks").value_or(0));
  Options.FieldBackend = Args.getString("field-backend");
  Options.FieldThreads = int(Args.getInt("field-threads").value_or(0));
  Options.FieldTiles = int(Args.getInt("field-tiles").value_or(0));
  // --shards routes every stage not explicitly configured onto the
  // sharded backend, then sets the shard count of every stage that ends
  // up sharded — including one the user spelled out redundantly with
  // --push-backend sharded. Explicit flags always win (CLI flag > env >
  // default): a stage's explicit backend choice is never overridden,
  // and an explicit thread-count flag beats the shard count.
  const int Shards = int(Args.getInt("shards").value_or(0));
  if (Shards > 0) {
    if (!Args.seen("push-backend"))
      Options.PushBackend = "sharded";
    if (!Args.seen("deposit-backend"))
      Options.DepositBackend = "sharded";
    if (!Args.seen("field-backend"))
      Options.FieldBackend = "sharded";
    if (Options.PushBackend == "sharded" && !Args.seen("threads"))
      Options.PushThreads = Shards;
    if (Options.DepositBackend == "sharded" && !Args.seen("deposit-threads"))
      Options.DepositThreads = Shards;
    if (Options.FieldBackend == "sharded" && !Args.seen("field-threads"))
      Options.FieldThreads = Shards;
  }
  Options.UseStepGraph = Args.getFlag("graph");
  Options.RebalanceThreshold = Args.getDouble("rebalance").value_or(0.0);
  Options.RebalanceEveryNSteps =
      int(Args.getInt("rebalance-every").value_or(10));
  if (Args.getFlag("moving-window")) {
    Options.MovingWindow.Enabled = true;
    Options.MovingWindow.Speed = Args.getDouble("window-speed").value_or(1.0);
    Options.MovingWindow.InjectPerCell = PerCell;
    Options.MovingWindow.InjectType = short(PS_Electron);
    Options.MovingWindow.InjectWeight = Weight;
  }
  const std::string SolverName = Args.getString("solver");
  if (SolverName == "spectral") {
    Options.Solver = FieldSolverKind::Spectral;
  } else if (SolverName != "fdtd") {
    std::fprintf(stderr, "error: unknown solver '%s' (fdtd or spectral)\n",
                 SolverName.c_str());
    return 1;
  }
  // The sinusoidally perturbed cold ensemble, seedable into any
  // simulation instance (the autotuner's measured trials below run it on
  // scratch instances before the real run does).
  const double V0 = 0.02;
  const double K = 2.0 * constants::Pi / BoxLength;
  auto seedEnsemble = [&](PicSimulation<double> &S) {
    for (Index C = 0; C < N.count(); ++C) {
      Index I = C / (N.Ny * N.Nz);
      Index J = (C / N.Nz) % N.Ny;
      Index K3 = C % N.Nz;
      for (int P = 0; P < PerCell; ++P) {
        ParticleT<double> Particle;
        Particle.Position = {(double(I) + (P + 0.5) / PerCell) * Step.X,
                             (double(J) + 0.5) * Step.Y,
                             (double(K3) + 0.5) * Step.Z};
        double Vx = V0 * std::sin(K * Particle.Position.X);
        Particle.Momentum = {Vx / std::sqrt(1 - Vx * Vx), 0, 0};
        Particle.Weight = Weight;
        Particle.Type = PS_Electron;
        S.addParticle(Particle);
      }
    }
  };

  // --tune fills every knob whose flag was not given explicitly from the
  // autotuner plan (same precedence rule as --shards: explicit flags
  // win), optionally refined by short measured trial runs. Every tuned
  // knob is hash-invariant, so the final hash below must still equal the
  // serial reference — ci/run.sh includes a --tune row in its
  // cross-backend hash gate.
  if (Args.getFlag("tune")) {
    auto applyPlan = [&](PicOptions<double> &O, const exec::TunePlan &Plan) {
      if (!Args.seen("push-backend"))
        O.PushBackend = Plan.Push.Backend;
      if (!Args.seen("threads"))
        O.PushThreads = Plan.Push.Threads;
      if (!Args.seen("pipeline-chunks"))
        O.PushPipelineChunks = Plan.PipelineChunks;
      if (!Args.seen("deposit-backend"))
        O.DepositBackend = Plan.Deposit.Backend;
      if (!Args.seen("deposit-threads"))
        O.DepositThreads = Plan.Deposit.Threads;
      if (!Args.seen("deposit-tiles"))
        O.DepositTiles = Plan.Deposit.Tiles;
      if (!Args.seen("field-backend"))
        O.FieldBackend = Plan.Field.Backend;
      if (!Args.seen("field-threads"))
        O.FieldThreads = Plan.Field.Threads;
      if (!Args.seen("field-tiles"))
        O.FieldTiles = Plan.Field.Tiles;
      if (!Args.getFlag("graph"))
        O.UseStepGraph = Plan.UseStepGraph;
    };
    exec::TunePlan Plan = exec::Autotuner::hostPlan();
    const int Trials = int(Args.getInt("tune-trials").value_or(0));
    if (Trials > 0) {
      const int TrialSteps = 4;
      int Used = 0;
      Plan = exec::Autotuner::refine(
          Plan,
          [&](const exec::TunePlan &Candidate) {
            PicOptions<double> TrialOptions = Options;
            applyPlan(TrialOptions, Candidate);
            PicSimulation<double> Trial(N, {0, 0, 0}, Step, NumParticles,
                                        ParticleTypeTable<double>::natural(),
                                        TrialOptions);
            seedEnsemble(Trial);
            for (int S = 0; S < TrialSteps; ++S)
              Trial.step();
            return Trial.pushStats().HostNs + Trial.depositStats().HostNs +
                   Trial.fieldStats().HostNs +
                   Trial.submitOverhead().SubmitNs;
          },
          Trials, &Used);
      std::printf("autotuner: %d measured trial run(s) refined the roofline "
                  "seed\n",
                  Used);
    }
    applyPlan(Options, Plan);
    std::printf("%s\n", Plan.report().c_str());
  }
  if (!exec::BackendRegistry::instance().contains(Options.PushBackend) ||
      !exec::BackendRegistry::instance().contains(Options.DepositBackend) ||
      !exec::BackendRegistry::instance().contains(Options.FieldBackend)) {
    std::fprintf(stderr, "error: unknown backend (known: %s)\n",
                 exec::listBackendNames(", ").c_str());
    return 1;
  }
  // Injection lands after retirement within a shift, so the live count
  // stays at NumParticles; a few planes of slack covers the transient.
  const Index Capacity =
      Options.MovingWindow.Enabled
          ? NumParticles + Index(4) * N.Ny * N.Nz * Index(PerCell)
          : NumParticles;
  PicSimulation<double> Sim(N, {0, 0, 0}, Step, Capacity,
                            ParticleTypeTable<double>::natural(), Options);
  seedEnsemble(Sim);

  std::printf("Cold Langmuir oscillation: %lld macro-electrons on a "
              "%lldx%lldx%lld grid, omega_p = 1\n\n",
              (long long)NumParticles, (long long)N.Nx, (long long)N.Ny,
              (long long)N.Nz);

  // Run two plasma periods (or the requested step count); record the
  // field-energy trace and locate its maxima (the E energy peaks twice
  // per plasma period).
  const double Dt = Sim.timeStep();
  const int AutoSteps = int(2.0 * 2.0 * constants::Pi / Dt);
  const int TotalSteps = int(Args.getInt("steps").value_or(0)) > 0
                             ? int(*Args.getInt("steps"))
                             : AutoSteps;
  // --restore replaces the seeded initial state with a checkpoint and
  // continues from its saved step index — so N steps + save + restore +
  // N steps prints the same final hash as 2N uninterrupted steps
  // (ci/run.sh gates on exactly that).
  const std::string RestoreFile = Args.getString("restore");
  const std::string CheckpointFile = Args.getString("checkpoint-file");
  const int CheckpointEvery =
      int(Args.getInt("checkpoint-every").value_or(0));
  std::string CheckpointError;
  if (!RestoreFile.empty()) {
    if (!Sim.restoreState(RestoreFile, &CheckpointError)) {
      std::fprintf(stderr, "error: cannot restore %s: %s\n",
                   RestoreFile.c_str(), CheckpointError.c_str());
      return 1;
    }
    std::printf("restored %s: continuing from step %d (t = %.2f)\n",
                RestoreFile.c_str(), Sim.stepCount(), Sim.time());
  }
  std::vector<double> Energy(std::size_t(Sim.stepCount()), 0.0);
  for (int S = Sim.stepCount(); S < TotalSteps; ++S) {
    Sim.step();
    Energy.push_back(Sim.fieldEnergy());
    if (CheckpointEvery > 0 && (S + 1) % CheckpointEvery == 0 &&
        S + 1 < TotalSteps) {
      if (!Sim.saveState(CheckpointFile, &CheckpointError)) {
        std::fprintf(stderr, "error: cannot checkpoint to %s: %s\n",
                     CheckpointFile.c_str(), CheckpointError.c_str());
        return 1;
      }
      std::printf("checkpointed step %d -> %s\n", S + 1,
                  CheckpointFile.c_str());
    }
  }

  std::printf("%-10s %-14s\n", "t", "field energy");
  for (int S = 9; S < TotalSteps; S += 20)
    if (Energy[std::size_t(S)] > 0)
      std::printf("%-10.2f %-14.4e\n", (S + 1) * Dt, Energy[std::size_t(S)]);

  // Peak-to-peak spacing of the energy trace = half the plasma period.
  std::vector<double> PeakTimes;
  for (int S = 1; S + 1 < TotalSteps; ++S)
    if (Energy[size_t(S)] > Energy[size_t(S - 1)] &&
        Energy[size_t(S)] >= Energy[size_t(S + 1)] &&
        Energy[size_t(S)] > 0.2 * *std::max_element(Energy.begin(),
                                                    Energy.end()))
      PeakTimes.push_back((S + 1) * Dt);
  if (PeakTimes.size() >= 2) {
    double MeanSpacing =
        (PeakTimes.back() - PeakTimes.front()) / double(PeakTimes.size() - 1);
    double MeasuredOmega = constants::Pi / MeanSpacing;
    std::printf("\nmeasured omega_p = %.3f (analytic: 1.000, error %.1f%%)\n",
                MeasuredOmega, 100.0 * std::abs(MeasuredOmega - 1.0));
  } else {
    std::printf("\n(not enough energy peaks found to fit omega_p)\n");
  }
  std::printf("energy exchange: kinetic %.3e <-> field %.3e (erg-equivalents)\n",
              Sim.kineticEnergy(), Sim.fieldEnergy());
  std::printf("push stage ran on '%s': %.2f ms total\n",
              Sim.pushBackend().name(), Sim.pushStats().HostNs / 1e6);
  if (Sim.usesAsyncPipeline()) {
    const pic::PicPipelineStats &P = Sim.pipelineStats();
    std::printf("  double-buffered pipeline: %d chunks x %d lanes, precalc "
                "%.2f ms + push %.2f ms kernels, overlap %.0f%%\n",
                Sim.pipelineChunkCount(), Sim.pushBackend().concurrency(),
                P.PrecalcNs / 1e6, P.PushNs / 1e6,
                100.0 * P.overlapEfficiency());
  }
  const std::vector<exec::ShardStat> ShardStats = Sim.shardStats();
  if (!ShardStats.empty()) {
    std::printf("  sharded execution: %zu shards, item imbalance %.2fx "
                "(max over mean)\n",
                ShardStats.size(), exec::shardImbalance(ShardStats));
    for (std::size_t S = 0; S < ShardStats.size(); ++S)
      std::printf("    shard %zu: %lld launches, %lld items, %.2f ms busy "
                  "(occupancy %.0f%%)\n",
                  S, ShardStats[S].Launches, ShardStats[S].Items,
                  ShardStats[S].BusyNs / 1e6,
                  100.0 * exec::shardOccupancy(ShardStats, S));
  }
  std::printf("deposit stage ran on '%s' (%d tiles): %.2f ms total\n",
              Sim.depositBackend().name(), Sim.depositTileCount(),
              Sim.depositStats().HostNs / 1e6);
  std::printf("field solve (%s) ran on '%s' (%d tiles): %.2f ms total\n",
              SolverName.c_str(), Sim.fieldBackend().name(),
              Sim.fieldTileCount(), Sim.fieldStats().HostNs / 1e6);
  if (Sim.rebalanceStats().Checks > 0) {
    const RebalanceStats RS = Sim.rebalanceStats();
    std::printf("rebalancer: %lld checks, %lld fires (threshold %.2f, last "
                "skew %.2f, max %.2f)\n",
                RS.Checks, RS.Fires, Options.RebalanceThreshold, RS.LastSkew,
                RS.MaxSkew);
  }
  if (Options.MovingWindow.Enabled)
    std::printf("moving window: %lld shifts (%lld planes), %lld retired, "
                "%lld injected, %lld live\n",
                Sim.windowShiftCount(),
                (long long)Sim.windowOriginPlanes(),
                Sim.windowRetiredCount(), Sim.windowInjectedCount(),
                (long long)Sim.particles().size());
  if (Sim.usesStepGraph()) {
    const exec::StepGraph *Graph = Sim.stepGraph();
    std::printf("step graph: %zu nodes, %zu edges; %lld capture(s), %lld "
                "replays, %.2f ms graph-step wall\n",
                Graph ? Graph->nodeCount() : 0,
                Graph ? Graph->edgeCount() : 0, Sim.graphCaptureCount(),
                Sim.graphReplayCount(), Sim.graphStats().HostNs / 1e6);
  }
  if (Args.getFlag("stats")) {
    // The submit-overhead ledger: what the step spends constructing
    // specs and driving submit() outside kernel bodies — the cost a
    // captured graph exists to collapse (launches stay at the capture
    // step's count under --graph).
    const double Steps = double(TotalSteps > 0 ? TotalSteps : 1);
    auto PrintLedger = [Steps](const char *Label, const RunStats &S) {
      std::printf("  %-12s %8lld launches (%6.2f/step)  %8lld specs  "
                  "%10.2f us submit (%8.3f us/step)\n",
                  Label, S.Launches, double(S.Launches) / Steps,
                  S.SpecsBuilt, S.SubmitNs / 1e3, S.SubmitNs / 1e3 / Steps);
    };
    std::printf("submit-overhead ledger over %d steps:\n", TotalSteps);
    PrintLedger("push", Sim.pushStats());
    if (Sim.pushBackend().isAsynchronous() || Sim.shardCount() > 0) {
      PrintLedger("  precalc", Sim.precalcKernelStats());
      PrintLedger("  push-krn", Sim.pushKernelStats());
    }
    PrintLedger("deposit", Sim.depositLaunchStats());
    PrintLedger("field", Sim.fieldLaunchStats());
    PrintLedger("total", Sim.submitOverhead());
  }
  std::printf("final state hash = %016llx (backend-independent)\n",
              (unsigned long long)picStateHash(Sim.particles(), Sim.grid()));
  return 0;
}
