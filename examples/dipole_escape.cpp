//===-- examples/dipole_escape.cpp - The paper's physics use case --------===//
//
// Part of the hichi-boris-dpcpp-repro project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The study that motivates the paper's benchmark (Section 5.2): "With
/// the help of simulations of the particle motion in the standing
/// m-dipole wave the rate of particle escape from the focal region can be
/// obtained. Based on these results the optimal parameters of the seed
/// target can be chosen."
///
/// Electrons start at rest, uniformly in a ball of radius 0.6 lambda at
/// the focus of a P = 0.1 PW standing m-dipole wave (the paper's P; in
/// the 4 GW - 1 PW window escape is fastest). We integrate their motion
/// with the Boris pusher in full CGS units and report the fraction still
/// inside the focal region (r < 0.6 lambda and r < lambda) over time, in
/// wave periods.
///
//===----------------------------------------------------------------------===//

#include "core/Core.h"
#include "fields/DipoleWave.h"

#include <cstdio>

using namespace hichi;

int main(int Argc, char **Argv) {
  const Index N = Argc > 1 ? Index(std::atoll(Argv[1])) : 20000;
  const int Periods = Argc > 2 ? std::atoi(Argv[2]) : 5;

  const double Lambda = dipole_benchmark::Wavelength;
  const double SeedRadius = dipole_benchmark::SeedRadiusFactor * Lambda;
  const double Period = 2.0 * constants::Pi / dipole_benchmark::WaveFrequency;
  const int StepsPerPeriod =
      int(1.0 / dipole_benchmark::TimeStepFraction); // dt = T/100
  const double Dt = Period / StepsPerPeriod;

  std::printf("Electron escape from the focal region of a standing "
              "m-dipole wave\n");
  std::printf("P = 0.1 PW, lambda = %.3g um, seed radius 0.6 lambda, "
              "%lld electrons, dt = T/%d\n\n",
              Lambda * 1e4, (long long)N, StepsPerPeriod);

  ParticleArraySoA<double> Particles(N);
  initializeBallAtRest(Particles, N, Vector3<double>::zero(), SeedRadius,
                       PS_Electron);
  auto Types = ParticleTypeTable<double>::cgs();
  auto Wave = DipoleWaveSource<double>::paperBenchmark();

  minisycl::queue Queue{minisycl::cpu_device()};
  auto Backend = exec::createBackend("dpcpp"); // any registered name works
  exec::ExecutionContext Ctx;
  Ctx.Queue = &Queue;
  exec::StepLoopOptions<double> Options;

  auto CountInside = [&](double Radius) {
    Index Inside = 0;
    for (Index I = 0; I < N; ++I)
      if (Particles[I].position().norm() < Radius)
        ++Inside;
    return Inside;
  };

  std::printf("%-10s %-18s %-18s %-14s\n", "t / T", "inside 0.6 lambda",
              "inside 1.0 lambda", "max gamma");
  for (int P = 0; P <= Periods; ++P) {
    double MaxGamma = 1;
    for (Index I = 0; I < N; ++I)
      MaxGamma = std::max(MaxGamma, Particles[I].gamma());
    std::printf("%-10d %-18.3f %-18.3f %-14.1f\n", P,
                double(CountInside(0.6 * Lambda)) / double(N),
                double(CountInside(Lambda)) / double(N), MaxGamma);
    if (P == Periods)
      break;
    Options.StartTime = double(P) * Period;
    exec::runStepLoop(*Backend, Ctx, Particles, Wave, Types, Dt,
                      StepsPerPeriod, Options);
  }

  std::printf("\nInterpretation: the fraction remaining at the focus when "
              "the wave power ramps past 10 PW seeds the vacuum-breakdown "
              "cascade (paper Refs. [21,22]); a fast-decaying curve means "
              "the seed target must be denser or larger.\n");
  return 0;
}
