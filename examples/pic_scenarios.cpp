//===-- examples/pic_scenarios.cpp - Skew-driving PIC scenarios ----------===//
//
// Part of the hichi-boris-dpcpp-repro project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runner for the canned scenarios beyond the uniform Langmuir ensemble
/// (pic/Scenarios.h): the drifting neutral pair slab (the moving-window
/// skew driver), the two-stream instability, the electron–ion
/// two-species plasma, and the density-gradient ensemble streaming into
/// an absorbing/open x boundary. Prints the scenario's physics
/// observable against its closed-form expectation, the occupancy-skew /
/// rebalance trace, and the grep-able final state hash ci/run.sh uses
/// for its cross-backend equivalence loops:
///
/// \code
///   pic_scenarios --scenario drifting-slab --shards 4 --rebalance 1.3
///   pic_scenarios --scenario two-stream --steps 120
///   pic_scenarios --scenario two-species --ion-mass 4
///   pic_scenarios --scenario density-gradient --backend openmp
/// \endcode
///
//===----------------------------------------------------------------------===//

#include "pic/Diagnostics.h"
#include "pic/PicSimulation.h"
#include "pic/Scenarios.h"
#include "support/ArgParse.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

using namespace hichi;
using namespace hichi::pic;

int main(int Argc, char **Argv) {
  ArgParser Args("pic_scenarios: skew-driving PIC scenarios with physics "
                 "expectations and rebalancing knobs");
  Args.addOption("scenario",
                 "one of: drifting-slab, two-stream, two-species, "
                 "density-gradient, moving-window",
                 "drifting-slab");
  Args.addOption("backend",
                 "exec backend for all three parallel stages "
                 "(--shards overrides with 'sharded')",
                 "openmp");
  Args.addOption("threads", "worker threads per stage (0 = all)", "0");
  Args.addOption("shards",
                 "run every stage on the sharded backend with this many "
                 "persistent shards (0 = off; wins over --backend)",
                 "0");
  Args.addOption("rebalance",
                 "occupancy-skew threshold of the between-steps rebalancer "
                 "(0 = off)",
                 "0");
  Args.addOption("rebalance-every", "steps between rebalance skew checks",
                 "10");
  Args.addOption("steps", "time steps to run (0 = scenario default)", "0");
  Args.addOption("percell", "particles per cell knob of the scenario", "0");
  Args.addOption("ion-mass",
                 "ion mass in electron masses (two-species scenario)", "4");
  Args.addFlag("graph",
               "capture the step's launch DAG once and replay it");
  if (!Args.parse(Argc, Argv)) {
    std::fprintf(stderr, "error: %s\n", Args.error().c_str());
    return 1;
  }
  if (Args.helpRequested()) {
    Args.printHelp(Argv[0]);
    return 0;
  }

  const std::string Name = Args.getString("scenario");
  const int PerCell = int(Args.getInt("percell").value_or(0));
  ScenarioSetup<double> S;
  int DefaultSteps = 100;
  if (Name == "drifting-slab") {
    S = makeDriftingSlabScenario<double>({64, 4, 4},
                                         PerCell > 0 ? PerCell : 4);
  } else if (Name == "two-stream") {
    S = makeTwoStreamScenario<double>({64, 4, 4}, PerCell > 0 ? PerCell : 1);
    DefaultSteps = 120;
  } else if (Name == "two-species") {
    S = makeTwoSpeciesScenario<double>(
        Args.getDouble("ion-mass").value_or(4.0), {32, 4, 4},
        PerCell > 0 ? PerCell : 4);
    DefaultSteps = 120;
  } else if (Name == "density-gradient") {
    S = makeDensityGradientScenario<double>({64, 4, 4},
                                            PerCell > 0 ? PerCell : 4);
    DefaultSteps = 150;
  } else if (Name == "moving-window") {
    S = makeMovingWindowScenario<double>({64, 4, 4},
                                         PerCell > 0 ? PerCell : 2);
    DefaultSteps = 120;
  } else {
    std::fprintf(stderr, "error: unknown scenario '%s'\n", Name.c_str());
    return 1;
  }

  PicOptions<double> Options;
  Options.LightVelocity = 1.0;
  Options.SortEveryNSteps = 20;
  Options.AbsorbingCells = S.AbsorbingCells;
  Options.MovingWindow = S.MovingWindow;
  Options.UseStepGraph = Args.getFlag("graph");
  Options.RebalanceThreshold = Args.getDouble("rebalance").value_or(0.0);
  Options.RebalanceEveryNSteps =
      int(Args.getInt("rebalance-every").value_or(10));
  const int Shards = int(Args.getInt("shards").value_or(0));
  const std::string Backend =
      Shards > 0 ? "sharded" : Args.getString("backend");
  const int Threads =
      Shards > 0 ? Shards : int(Args.getInt("threads").value_or(0));
  Options.PushBackend = Backend;
  Options.PushThreads = Threads;
  Options.DepositBackend = Backend;
  Options.DepositThreads = Threads;
  Options.FieldBackend = Backend;
  Options.FieldThreads = Threads;
  if (!exec::BackendRegistry::instance().contains(Backend)) {
    std::fprintf(stderr, "error: unknown backend '%s' (known: %s)\n",
                 Backend.c_str(), exec::listBackendNames(", ").c_str());
    return 1;
  }

  PicSimulation<double> Sim(S.Grid, S.Origin, S.Step,
                            Index(S.Particles.size()) + S.ExtraCapacity,
                            S.Types, Options);
  seedScenario(Sim, S);

  const Index N0 = Sim.particles().size();
  std::printf("scenario '%s': %lld particles on a %lldx%lldx%lld grid, "
              "backend '%s'%s%s\n\n",
              S.Name.c_str(), (long long)N0, (long long)S.Grid.Nx,
              (long long)S.Grid.Ny, (long long)S.Grid.Nz, Backend.c_str(),
              Options.AbsorbingCells > 0 ? ", absorbing x boundary" : "",
              Options.MovingWindow.Enabled ? ", moving window" : "");

  const int TotalSteps = int(Args.getInt("steps").value_or(0)) > 0
                             ? int(*Args.getInt("steps"))
                             : DefaultSteps;
  const double Dt = Sim.timeStep();
  std::vector<double> Energy, Times;
  for (int Step = 0; Step < TotalSteps; ++Step) {
    Sim.step();
    Energy.push_back(Sim.fieldEnergy());
    Times.push_back(Sim.time());
  }

  // The scenario's physics observable vs its closed-form expectation.
  if (S.ExpectedGrowthRate > 0) {
    // Fit the instability's e^{2 gamma t} field-energy growth over the
    // linear phase (before trapping saturates it).
    double Sx = 0, Sy = 0, Sxx = 0, Sxy = 0;
    int Count = 0;
    for (std::size_t I = 0; I < Energy.size(); ++I)
      if (Times[I] > 4 && Times[I] < 10 && Energy[I] > 0) {
        const double X = Times[I], Y = std::log(Energy[I]);
        Sx += X;
        Sy += Y;
        Sxx += X * X;
        Sxy += X * Y;
        ++Count;
      }
    if (Count > 2) {
      const double Gamma =
          (Count * Sxy - Sx * Sy) / (Count * Sxx - Sx * Sx) / 2.0;
      std::printf("growth rate gamma = %.4f (analytic %.4f, error %.1f%%)\n",
                  Gamma, double(S.ExpectedGrowthRate),
                  100.0 * std::abs(Gamma / S.ExpectedGrowthRate - 1.0));
    }
  }
  if (S.ExpectedOmega > 0) {
    const double MaxE = *std::max_element(Energy.begin(), Energy.end());
    std::vector<double> Peaks;
    for (std::size_t I = 1; I + 1 < Energy.size(); ++I)
      if (Energy[I] > Energy[I - 1] && Energy[I] >= Energy[I + 1] &&
          Energy[I] > 0.2 * MaxE)
        Peaks.push_back(Times[I]);
    if (Peaks.size() >= 2) {
      const double Omega = constants::Pi / ((Peaks.back() - Peaks.front()) /
                                            double(Peaks.size() - 1));
      std::printf("omega = %.4f (analytic %.4f, error %.1f%%)\n", Omega,
                  double(S.ExpectedOmega),
                  100.0 * std::abs(Omega / S.ExpectedOmega - 1.0));
    }
  }
  std::printf("after %d steps (dt %.4f): kinetic %.6e, field %.6e\n",
              TotalSteps, Dt, Sim.kineticEnergy(), Sim.fieldEnergy());
  if (Options.AbsorbingCells > 0)
    std::printf("open boundary: %lld absorbed, %lld live\n",
                Sim.absorbedParticleCount(),
                (long long)Sim.particles().size());
  if (Options.MovingWindow.Enabled)
    std::printf("moving window: %lld shifts (%lld planes), %lld retired, "
                "%lld injected, %lld live\n",
                Sim.windowShiftCount(),
                (long long)Sim.windowOriginPlanes(),
                Sim.windowRetiredCount(), Sim.windowInjectedCount(),
                (long long)Sim.particles().size());
  if (Sim.rebalanceStats().Checks > 0) {
    const RebalanceStats RS = Sim.rebalanceStats();
    std::printf("rebalancer: %lld checks, %lld fires (threshold %.2f, last "
                "skew %.2f, max %.2f)\n",
                RS.Checks, RS.Fires, Options.RebalanceThreshold, RS.LastSkew,
                RS.MaxSkew);
  }
  const std::vector<exec::ShardStat> ShardStats = Sim.shardStats();
  if (!ShardStats.empty())
    std::printf("sharded execution: %zu shards, item imbalance %.2fx since "
                "the last repartition\n",
                ShardStats.size(), exec::shardImbalance(ShardStats));
  if (Sim.usesStepGraph())
    std::printf("step graph: %lld capture(s), %lld replays\n",
                Sim.graphCaptureCount(), Sim.graphReplayCount());
  std::printf("final state hash = %016llx (backend-independent)\n",
              (unsigned long long)picStateHash(Sim.particles(), Sim.grid()));
  return 0;
}
