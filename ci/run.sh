#!/usr/bin/env bash
# CI entry point: Release build, full test suite, and a smoke benchmark
# pass at tiny sizes whose JSON records land in results/ as artifacts.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"

cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j"$JOBS"
ctest --test-dir build --output-on-failure -j"$JOBS"

mkdir -p results

# Tiny sizes so the smoke pass takes seconds; the point is functional
# coverage plus a machine-readable perf trace, not stable numbers.
export HICHI_BENCH_PARTICLES="${HICHI_BENCH_PARTICLES:-4000}"
export HICHI_BENCH_STEPS="${HICHI_BENCH_STEPS:-8}"
export HICHI_BENCH_ITERATIONS="${HICHI_BENCH_ITERATIONS:-2}"

# The smoke benches, as one rerunnable unit: the perf trend gate below
# re-measures through this function to confirm a flagged regression.
run_smoke_benches() {
  # bench_pic_deposit / bench_pic_async / bench_pic_fields also fail by
  # themselves if any configuration's state hash deviates from the
  # serial reference. bench_pic_async additionally runs the step-graph
  # resubmit-vs-replay sweep (stage "submit") and fails unless replay is
  # strictly cheaper to issue at the smallest grid.
  HICHI_BENCH_JSON=results/BENCH_scheduling.json \
    ./build/bench_ablation_scheduling
  HICHI_BENCH_JSON=results/BENCH_pic_deposit.json ./build/bench_pic_deposit
  HICHI_BENCH_JSON=results/BENCH_pic_async.json ./build/bench_pic_async
  HICHI_BENCH_JSON=results/BENCH_pic_fields.json ./build/bench_pic_fields
  # bench_pic_sharded fails by itself on any shard-count hash deviation
  # and records the shard-scaling trend baseline (stage "step") — once
  # resubmitting and once in step-graph replay mode (submit "graph"
  # keys the records separately in the trend gate).
  HICHI_BENCH_JSON=results/BENCH_pic_sharded.json ./build/bench_pic_sharded
  HICHI_BENCH_GRAPH=1 HICHI_BENCH_JSON=results/BENCH_pic_sharded_graph.json \
    ./build/bench_pic_sharded
  # bench_pic_rebalance fails by itself if any configuration (serial /
  # sharded, static / rebalanced) deviates from one state hash on the
  # drifting-slab skew scenario; records stages "step" and "rebalance".
  # HICHI_BENCH_REBALANCE=0 would drop the rebalanced rows.
  HICHI_BENCH_JSON=results/BENCH_pic_rebalance.json \
    ./build/bench_pic_rebalance
  # bench_pic_window fails by itself if any configuration deviates from
  # the serial state hash on the moving-window scenario, if retire !=
  # inject, or if a shift ever touches more than 9 x Ny x Nz lattice
  # elements per shifted plane (the O(shifted planes) ring guarantee);
  # records stage "window-shift".
  HICHI_BENCH_JSON=results/BENCH_pic_window.json ./build/bench_pic_window
  # bench_serve fails by itself if any served job's final hash deviates
  # from a standalone serial run of the same spec; records throughput
  # (stage "serve") and per-job latency (stage "latency") per config.
  HICHI_BENCH_JOBS="${HICHI_BENCH_JOBS:-8}" \
    HICHI_BENCH_JSON=results/BENCH_serve.json ./build/bench_serve
  for RUNNER in serial openmp dpcpp dpcpp-numa async-pipeline sharded; do
    ./build/hichi_push --runner "$RUNNER" --particles 20000 --steps 10 \
      --iterations 2 --json "results/BENCH_push_${RUNNER}.json" \
      | grep -E "NSPS|state hash"
  done
  # The step-loop graph shape (capture step 0, replay the rest).
  ./build/hichi_push --runner dpcpp --graph --particles 20000 --steps 10 \
    --iterations 2 --json results/BENCH_push_dpcpp_graph.json \
    | grep -E "NSPS|state hash"
}

./build/hichi_push --list-runners

# Calibrate the machine profile once (the fast sweep): the artifact is
# the `hichi-machine-v1` document the autotuner plans from, and the
# bench fails by itself if its own save -> load round trip is not
# bit-identical.
./build/bench_calibrate --fast --out results/machine_profile.json

run_smoke_benches

# All runners (the event-chained async-pipeline included) must agree
# bitwise on the final particle state; --chain re-runs the dpcpp backend
# through the event-chained submission shape and --graph through the
# captured-once/replayed step graph.
HASHES="$({
  for RUNNER in serial openmp dpcpp dpcpp-numa async-pipeline sharded; do
    ./build/hichi_push --runner "$RUNNER" --particles 5000 --steps 5 \
      --iterations 1
  done
  ./build/hichi_push --runner dpcpp --chain --particles 5000 --steps 5 \
    --iterations 1
  for RUNNER in openmp async-pipeline sharded; do
    ./build/hichi_push --runner "$RUNNER" --graph --particles 5000 \
      --steps 5 --iterations 1
  done
} | sed -n 's/final state hash = \([0-9a-f]*\).*/\1/p' | sort -u | wc -l)"
if [ "$HASHES" != "1" ]; then
  echo "FAIL: runners disagree on the final particle state" >&2
  exit 1
fi
echo "runner equivalence: OK (all state hashes identical)"

# The full PIC loop must agree bitwise across push/deposit backends and
# tile counts (the tiled-deposition determinism guarantee), including
# the async-pipeline push path (the double-buffered precalc/push
# pipeline) with several lane/chunk configurations.
PIC_HASHES="$(
  for B in serial openmp dpcpp dpcpp-numa async-pipeline sharded; do
    ./build/pic_langmuir --steps 40 --push-backend "$B" \
      --deposit-backend "$B" --deposit-tiles 5 \
      | sed -n 's/final state hash = \([0-9a-f]*\).*/\1/p'
  done
  # The sharded whole-loop shape (all three stages on persistent shards,
  # per-shard deposit chains) at two shard counts.
  for SHARDS in 3 7; do
    ./build/pic_langmuir --steps 40 --shards "$SHARDS" \
      | sed -n 's/final state hash = \([0-9a-f]*\).*/\1/p'
  done
  ./build/pic_langmuir --steps 40 --push-backend serial \
    --deposit-backend serial \
    | sed -n 's/final state hash = \([0-9a-f]*\).*/\1/p'
  ./build/pic_langmuir --steps 40 --deposit-backend openmp \
    --deposit-tiles 11 --deposit-threads 2 \
    | sed -n 's/final state hash = \([0-9a-f]*\).*/\1/p'
  ./build/pic_langmuir --steps 40 --push-backend async-pipeline \
    --threads 4 --pipeline-chunks 3 --deposit-backend dpcpp \
    | sed -n 's/final state hash = \([0-9a-f]*\).*/\1/p'
  # Step-graph replay (capture step 0, replay 1..39) must land on the
  # same hash, including the sharded whole-loop shape.
  for B in serial openmp async-pipeline; do
    ./build/pic_langmuir --steps 40 --push-backend "$B" \
      --deposit-backend "$B" --deposit-tiles 5 --graph \
      | sed -n 's/final state hash = \([0-9a-f]*\).*/\1/p'
  done
  ./build/pic_langmuir --steps 40 --shards 3 --graph \
    | sed -n 's/final state hash = \([0-9a-f]*\).*/\1/p'
  # An armed-but-never-fired rebalancer is a bitwise no-op: the uniform
  # Langmuir ensemble (skew ~1) never trips threshold 1.5, so these rows
  # must land on the same hash as every row above.
  ./build/pic_langmuir --steps 40 --rebalance 1.5 \
    | sed -n 's/final state hash = \([0-9a-f]*\).*/\1/p'
  ./build/pic_langmuir --steps 40 --shards 3 --rebalance 1.5 --graph \
    | sed -n 's/final state hash = \([0-9a-f]*\).*/\1/p'
  # The autotuner's chosen knobs are hash-invariant by construction
  # (backends/threads/tiles/graph only), so a tuned run must land on the
  # same hash as every row above.
  ./build/pic_langmuir --steps 40 --tune \
    | sed -n 's/final state hash = \([0-9a-f]*\).*/\1/p'
)"
if [ "$(echo "$PIC_HASHES" | sort -u | wc -l)" != "1" ]; then
  echo "FAIL: PIC state hashes differ across backends/tiles/pipelines" >&2
  exit 1
fi
echo "PIC equivalence: OK (all state hashes identical, async pipeline included)"

# The Maxwell field solve must agree bitwise across field backends and
# tile counts too — for both solvers (FDTD's x-slab halo tiles and the
# spectral solver's k-space launches), including the asynchronous field
# backend whose solve event-chains against the deposit reduction. Hashes
# differ *between* solvers (different physics schemes), so the
# uniqueness check runs per solver.
for SOLVER in fdtd spectral; do
  FIELD_HASHES="$(
    for B in serial openmp dpcpp dpcpp-numa async-pipeline sharded; do
      ./build/pic_langmuir --steps 40 --solver "$SOLVER" \
        --field-backend "$B" --field-tiles 5 \
        | sed -n 's/final state hash = \([0-9a-f]*\).*/\1/p'
    done
    ./build/pic_langmuir --steps 40 --solver "$SOLVER" \
      --field-backend serial \
      | sed -n 's/final state hash = \([0-9a-f]*\).*/\1/p'
    ./build/pic_langmuir --steps 40 --solver "$SOLVER" \
      --field-backend openmp --field-tiles 11 --field-threads 2 \
      | sed -n 's/final state hash = \([0-9a-f]*\).*/\1/p'
    ./build/pic_langmuir --steps 40 --solver "$SOLVER" \
      --field-backend async-pipeline --field-threads 2 --field-tiles 7 \
      --deposit-backend async-pipeline --deposit-tiles 3 \
      | sed -n 's/final state hash = \([0-9a-f]*\).*/\1/p'
    # Graph replay of the per-solver field chain (B->E->B / k-space).
    ./build/pic_langmuir --steps 40 --solver "$SOLVER" \
      --field-backend openmp --field-tiles 5 --graph \
      | sed -n 's/final state hash = \([0-9a-f]*\).*/\1/p'
  )"
  if [ "$(echo "$FIELD_HASHES" | sort -u | wc -l)" != "1" ]; then
    echo "FAIL: $SOLVER field-solve state hashes differ across" \
         "backends/tiles" >&2
    exit 1
  fi
done
echo "PIC field-solve equivalence: OK (all state hashes identical per solver)"

# The skew-driving scenarios (pic/Scenarios.h) must agree bitwise across
# backends too — with the rebalancer FIRING. The trigger is a pure
# function of particle positions, so every backend repartitions on the
# same steps and rebalanced runs stay bit-comparable; hashes differ
# *between* scenarios (and between rebalanced and plain runs of a
# scenario with real fields), so uniqueness is checked per command row.
for SCENARIO_ARGS in \
    "--scenario drifting-slab --rebalance 1.3" \
    "--scenario drifting-slab --rebalance 1.3 --graph" \
    "--scenario two-stream --steps 60" \
    "--scenario density-gradient --steps 80" \
    "--scenario density-gradient --steps 80 --rebalance 1.3" \
    "--scenario moving-window --steps 60" \
    "--scenario moving-window --steps 60 --rebalance 1.3" \
    "--scenario moving-window --steps 60 --graph"; do
  SCENARIO_HASHES="$(
    for B in serial openmp; do
      # shellcheck disable=SC2086
      ./build/pic_scenarios $SCENARIO_ARGS --backend "$B" \
        | sed -n 's/final state hash = \([0-9a-f]*\).*/\1/p'
    done
    for SHARDS in 4 5; do
      # shellcheck disable=SC2086
      ./build/pic_scenarios $SCENARIO_ARGS --shards "$SHARDS" \
        | sed -n 's/final state hash = \([0-9a-f]*\).*/\1/p'
    done
  )"
  if [ "$(echo "$SCENARIO_HASHES" | sort -u | wc -l)" != "1" ]; then
    echo "FAIL: scenario hashes differ across backends: $SCENARIO_ARGS" >&2
    exit 1
  fi
done
echo "PIC scenario equivalence: OK (rebalanced runs identical per scenario)"

# Serving smoke: the multi-tenant job runner must complete 100 jobs
# across 4 tenants over one shared pool with cross-job batching, and a
# sample of the served hashes must be bit-identical to standalone
# serial runs of the same specs (hichi_serve exits nonzero on any
# mismatch or unfinished job).
./build/hichi_serve --synthetic 100 --tenants 4 --workers 2 --batch 2 \
  --verify-sample 10 --quiet
echo "serve smoke: OK (100 jobs, 4 tenants, sampled hashes standalone-identical)"

# Crash recovery: a scheduler "killed" after three quanta (exit 3 =
# interrupted with work left) must leave checkpoints + manifest from
# which a fresh --resume run completes every job; --verify re-runs each
# completed job standalone and fails on any hash deviation.
SERVE_STATE="$(mktemp -d)"
if ./build/hichi_serve --synthetic 12 --tenants 2 --quantum 8 \
     --state-dir "$SERVE_STATE" --exit-after-quanta 3 --quiet; then
  echo "FAIL: crash-injected serve run should exit nonzero" >&2
  exit 1
fi
./build/hichi_serve --synthetic 12 --tenants 2 --quantum 8 \
  --state-dir "$SERVE_STATE" --resume --verify --quiet
rm -rf "$SERVE_STATE"
echo "serve crash recovery: OK (resume completed all jobs bit-identically)"

# Checkpoint/restore at the example level: 2N uninterrupted steps (the
# first run, which also drops a mid-run checkpoint at step N) and
# N + restore + N (the second run, resuming from that checkpoint) must
# print one state hash.
CKPT_FILE="$(mktemp -u).ckpt"
CKPT_HASHES="$(
  ./build/pic_langmuir --steps 48 --checkpoint-every 24 \
    --checkpoint-file "$CKPT_FILE" \
    | sed -n 's/final state hash = \([0-9a-f]*\).*/\1/p'
  ./build/pic_langmuir --steps 48 --restore "$CKPT_FILE" \
    | sed -n 's/final state hash = \([0-9a-f]*\).*/\1/p'
)"
rm -f "$CKPT_FILE"
if [ "$(echo "$CKPT_HASHES" | sort -u | wc -l)" != "1" ]; then
  echo "FAIL: checkpoint restore diverged from the uninterrupted run" >&2
  exit 1
fi
echo "checkpoint equivalence: OK (restore resumes bit-identically)"

# Docs must not point at files that do not exist: every relative link in
# README.md and docs/ARCHITECTURE.md is resolved against the repo root.
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF'
import os, re, sys
bad = []
for doc in ("README.md", "docs/ARCHITECTURE.md"):
    base = os.path.dirname(doc)
    for target in re.findall(r"\]\(([^)#]+)(?:#[^)]*)?\)", open(doc).read()):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if not os.path.exists(os.path.join(base, target)):
            bad.append(f"{doc} -> {target}")
if bad:
    print("FAIL: dangling doc links:\n  " + "\n  ".join(bad), file=sys.stderr)
    sys.exit(1)
print("doc links: OK")
EOF
fi

# The JSON artifacts must parse.
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF'
import glob, json
files = glob.glob("results/BENCH_*.json")
assert files, "no JSON artifacts produced"
for f in files:
    with open(f) as fh:
        doc = json.load(fh)
    assert doc["schema"] == "hichi-bench-v1" and doc["results"], f
with open("results/machine_profile.json") as fh:
    prof = json.load(fh)
assert prof["schema"] == "hichi-machine-v1", "machine_profile.json"
assert prof["bandwidth_tiers"] and prof["submit_overheads"], \
    "machine_profile.json is missing measured sections"
print(f"JSON artifacts: OK ({len(files)} files + machine profile)")
EOF
fi

# Perf trend gate: the newest artifacts must not regress NSPS by more
# than 15% per (bench, backend, stage) against the previous recorded run
# (results/baseline/, refreshed on every green pass). A flagged
# regression is re-measured once before failing — a transient spike on
# a shared CI host passes the second measurement, a real regression
# fails both. Skip with HICHI_TREND_SKIP=1 (e.g. when benchmarking on a
# loaded host); tune with HICHI_TREND_THRESHOLD.
# HICHI_TREND_SKIP accepts the uniform boolean grammar
# (0/1/true/false/on/off/yes/no, case-insensitive).
TREND_SKIP="$(echo "${HICHI_TREND_SKIP:-0}" | tr '[:upper:]' '[:lower:]' \
              | tr -d '[:space:]')"
case "$TREND_SKIP" in
  1|true|on|yes) TREND_SKIP=1 ;;
  *) TREND_SKIP=0 ;;
esac
if command -v python3 >/dev/null 2>&1 && [ "$TREND_SKIP" != "1" ]; then
  TREND="python3 tools/bench_trend.py --results results \
    --baseline results/baseline --threshold ${HICHI_TREND_THRESHOLD:-0.15}"
  # --update only takes effect after a passing comparison, so one
  # invocation both gates and records the new baseline. Two-strikes
  # confirmation: only a group that regresses in the first measurement
  # AND the re-measure fails the gate.
  if ! $TREND --update --regressions-out results/.trend_flagged.json; then
    echo "bench_trend: regression flagged; re-measuring once to confirm"
    run_smoke_benches
    $TREND --update --confirm results/.trend_flagged.json
  fi
fi

echo "ci/run.sh: all green"
