#!/usr/bin/env python3
"""Perf trend checker for hichi-bench-v1 JSON records.

Compares the newest benchmark artifacts (results/BENCH_*.json) against
the previous recorded run (the baseline directory) and fails when any
matched configuration regressed by more than the threshold on the NSPS
metric (ns per particle per step — lower is better). ci/run.sh runs
this after the smoke benches and updates the baseline on success, so a
regression must be acknowledged by deleting/refreshing the baseline to
land.

Records are matched on the full configuration key — (bench, backend,
stage, scenario, layout, precision, particles, steps, iterations,
fuse_steps, threads) — so a size or sweep change never produces a bogus
comparison. The *gate* is per (bench, backend, stage): the median
drift-adjusted ratio across that triple's matched configurations must
not exceed the tolerance, so one noisy cell cannot fail a sweep but a
backend/stage that is consistently slower does. Keys present on only
one side are counted informationally and never fail the check.

Four layers of noise robustness, because CI smoke sizes are tiny and
CI hosts are shared: the compared metric is the *best* (fastest)
iteration of each configuration; run-wide host-speed drift is removed
by normalizing with the median old/new ratio across every matched
configuration (a real regression moves one backend/stage against the
rest; a slow CI host moves everything together); the effective
tolerance is the larger of the threshold and three robust sigmas
(1.4826 x MAD) of the run's own drift-adjusted log-ratio spread — on a
quiet host the 15% threshold binds, on a host whose measurements
scatter 30% the gate widens to what the data can actually resolve; and
ci/run.sh demands reproducibility via --regressions-out / --confirm: a
flagged group only fails CI if it regresses again in a fresh
re-measurement (real regressions are stable across re-measures;
process-level noise flags a different group each time). --no-normalize
disables the drift/tolerance layers.

Usage:
  tools/bench_trend.py [--results results] [--baseline results/baseline]
                       [--threshold 0.15] [--update]

Exit status: 1 on regression, 0 otherwise (including "no baseline yet").
"""

import argparse
import glob
import json
import math
import os
import shutil
import sys

# The identity of one measured configuration. Everything that changes
# what is being measured belongs here; nothing that merely re-measures.
KEY_FIELDS = (
    "bench",
    "backend",
    "stage",
    "scenario",
    "layout",
    "precision",
    "particles",
    "steps",
    "iterations",
    "fuse_steps",
    "threads",
    "submit",
)


def record_key(record):
    return tuple(record.get(field) for field in KEY_FIELDS)


def best_nsps(record):
    """Noise-robust NSPS: the best (fastest) measured iteration.

    The recorded `nsps` averages all iterations, which on a loaded CI
    host swings far more than the per-iteration minimum (`min_ns`) —
    the standard robust estimator for 'how fast can this configuration
    go'. Falls back to `nsps` when the record lacks the wall-time
    fields.
    """
    nsps = record.get("nsps") or 0.0
    min_ns = record.get("min_ns") or 0.0
    particles = record.get("particles") or 0
    steps = record.get("steps") or 0
    if min_ns > 0 and particles > 0 and steps > 0:
        per_iteration = min_ns / (float(particles) * float(steps))
        if nsps > 0:
            return min(nsps, per_iteration)
        return per_iteration
    return nsps


def load_records(directory):
    """All hichi-bench-v1 records under directory, keyed by configuration.

    Later files win on duplicate keys (there should not be any within one
    run). Non-JSON or non-bench files are skipped with a note.
    """
    records = {}
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        try:
            with open(path) as handle:
                doc = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            print(f"bench_trend: skipping unreadable {path}: {error}")
            continue
        if doc.get("schema") != "hichi-bench-v1":
            print(f"bench_trend: skipping {path}: not hichi-bench-v1")
            continue
        for record in doc.get("results", []):
            records[record_key(record)] = record
    return records


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--results", default="results",
                        help="directory with the newest BENCH_*.json")
    parser.add_argument("--baseline", default=os.path.join("results",
                                                           "baseline"),
                        help="directory with the previous run's artifacts")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="fail when nsps grows by more than this "
                             "fraction (default 0.15 = 15%%)")
    parser.add_argument("--update", action="store_true",
                        help="on success (or missing baseline), copy the "
                             "newest artifacts into the baseline directory")
    parser.add_argument("--no-normalize", action="store_true",
                        help="compare raw NSPS instead of removing the "
                             "run-wide median host-speed drift first")
    parser.add_argument("--regressions-out", metavar="PATH",
                        help="write the failing (bench, backend, stage) "
                             "groups to PATH as JSON (for a later "
                             "--confirm pass)")
    parser.add_argument("--confirm", metavar="PATH",
                        help="two-strikes mode: only fail on groups that "
                             "also appear in PATH (written by a previous "
                             "--regressions-out run) — a reproducible "
                             "regression fails twice, uncorrelated host "
                             "noise flags different groups each time")
    args = parser.parse_args()

    current = load_records(args.results)
    if not current:
        print(f"bench_trend: no hichi-bench-v1 artifacts in {args.results}; "
              "nothing to check")
        return 0

    baseline = load_records(args.baseline) if os.path.isdir(
        args.baseline) else {}
    if not baseline:
        print(f"bench_trend: no baseline in {args.baseline}; recording the "
              "current run as the first baseline")
        if args.update:
            update_baseline(args.results, args.baseline)
        return 0

    matched = sorted(set(current) & set(baseline))
    pairs = []
    for key in matched:
        old = best_nsps(baseline[key])
        new = best_nsps(current[key])
        if old > 0 and new > 0:  # zero-duration smoke cells carry no signal
            pairs.append((key, old, new))

    # Run-wide host-speed drift: the median old/new ratio. Multiplying
    # every new measurement by it re-expresses the current run at the
    # baseline run's machine speed; genuine per-configuration regressions
    # survive the rescaling, a uniformly slow/fast host cancels out.
    drift = 1.0
    tolerance = args.threshold
    if pairs and not args.no_normalize:
        if len(pairs) < 2:
            # Degenerate run: with a single matched configuration the
            # median drift IS that configuration's ratio (normalization
            # would eat the entire signal) and the MAD is 0 (the robust
            # sigma cannot estimate spread from one sample). Fall back to
            # the raw threshold-only gate and say so explicitly.
            print("bench_trend: n=1 matched configuration — no spread "
                  "estimate; drift normalization and the noise-adaptive "
                  "tolerance are disabled (threshold-only gate)")
        else:
            ratios = sorted(old / new for _, old, new in pairs)
            drift = ratios[len(ratios) // 2]
            # Noise-adaptive tolerance: the drift-adjusted log-ratios
            # center on 0 by construction; their median absolute
            # deviation measures what this host can resolve. Gate at the
            # larger of the requested threshold and three robust sigmas,
            # so a quiet host enforces the threshold and a noisy one does
            # not flap on its own scatter.
            residuals = sorted(abs(math.log(new * drift / old))
                               for _, old, new in pairs)
            sigma = 1.4826 * residuals[len(residuals) // 2]
            tolerance = max(args.threshold, math.expm1(3.0 * sigma))

    # Aggregate to the gated granularity: (bench, backend, stage), the
    # median drift-adjusted ratio across the triple's configurations.
    by_triple = {}
    for key, old, new in pairs:
        fields = dict(zip(KEY_FIELDS, key))
        triple = (fields["bench"], fields["backend"], fields["stage"])
        by_triple.setdefault(triple, []).append(new * drift / old)

    previously_flagged = None
    if args.confirm:
        try:
            with open(args.confirm) as handle:
                previously_flagged = {tuple(t) for t in json.load(handle)}
        except (OSError, json.JSONDecodeError):
            previously_flagged = set()

    regressions = []
    improvements = 0
    for triple, ratios in sorted(by_triple.items()):
        ratios.sort()
        ratio = ratios[len(ratios) // 2]
        if ratio > 1.0 + tolerance:
            if previously_flagged is not None and \
                    triple not in previously_flagged:
                print(f"bench_trend: {' / '.join(triple)} regressed "
                      f"(+{ratio - 1.0:.0%}) only in this measurement, not "
                      "the previous one — treating as host noise")
                continue
            regressions.append((triple, ratio, len(ratios)))
        elif ratio < 1.0:
            improvements += 1

    if args.regressions_out:
        with open(args.regressions_out, "w") as handle:
            json.dump([list(triple) for triple, _, _ in regressions], handle)

    only_new = len(set(current) - set(baseline))
    only_old = len(set(baseline) - set(current))
    print(f"bench_trend: {len(matched)} configurations compared "
          f"({only_new} new, {only_old} retired), tolerance "
          f"{tolerance:.0%} (threshold {args.threshold:.0%}), host-speed "
          f"drift factor {1.0 / drift:.2f}x"
          if pairs else
          f"bench_trend: {len(matched)} configurations compared "
          f"({only_new} new, {only_old} retired)")
    if drift < 1.0 / 1.2:
        # The blind spot of drift normalization: a change that slows every
        # group uniformly looks exactly like a slow host. Surface it
        # loudly so a layer-wide regression is at least visible in the CI
        # log even though the per-group gate cannot prove it.
        print(f"bench_trend: WARNING — the whole run is "
              f"{1.0 / drift:.2f}x slower than the baseline; if the host "
              "is not loaded, suspect a uniform (layer-wide) regression, "
              "which drift normalization cannot distinguish from host "
              "slowdown (re-check with --no-normalize on a quiet machine)")

    if regressions:
        print(f"bench_trend: FAIL — {len(regressions)} NSPS regression(s) "
              "per (bench, backend, stage):", file=sys.stderr)
        for (bench, backend, stage), ratio, count in regressions:
            note = " (n=1, no spread estimate)" if count == 1 else ""
            print(f"  {bench} / {backend} / {stage}: median "
                  f"+{ratio - 1.0:.0%} drift-adjusted NSPS over {count} "
                  f"configuration(s){note}", file=sys.stderr)
        return 1

    print(f"bench_trend: OK ({improvements} of {len(by_triple)} "
          f"(bench, backend, stage) groups improved, none regressed "
          f"beyond {tolerance:.0%})")
    if args.update:
        update_baseline(args.results, args.baseline)
    return 0


def update_baseline(results_dir, baseline_dir):
    os.makedirs(baseline_dir, exist_ok=True)
    copied = 0
    for path in glob.glob(os.path.join(results_dir, "BENCH_*.json")):
        shutil.copy2(path, baseline_dir)
        copied += 1
    print(f"bench_trend: baseline updated ({copied} artifacts -> "
          f"{baseline_dir})")


if __name__ == "__main__":
    sys.exit(main())
