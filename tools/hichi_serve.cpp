//===-- tools/hichi_serve.cpp - Multi-tenant simulation job runner --------===//
//
// Part of the hichi-boris-dpcpp-repro project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving-layer CLI: runs a stream of simulation jobs (a JSON
/// job-spec file, or the deterministic synthetic mix) over one shared
/// execution pool with cross-job batching, round-robin quanta and
/// checkpoint-based suspend/resume (src/serve/). Prints streamed
/// per-job completions, a throughput/latency summary, and optionally
/// verifies served hashes against standalone serial reruns:
///
/// \code
///   hichi_serve --synthetic 100 --tenants 4 --workers 2 --verify-sample 8
///   hichi_serve --jobs specs.json --quantum 16 --state-dir /tmp/serve
///   hichi_serve --synthetic 12 --quantum 8 --state-dir D --exit-after-quanta 2
///   hichi_serve --synthetic 12 --quantum 8 --state-dir D --resume --verify
/// \endcode
///
/// Exit codes: 0 all jobs completed (and verified, when requested);
/// 1 argument/spec errors or a verification mismatch; 3 the scheduler
/// stopped early via --exit-after-quanta with resumable work left.
///
//===----------------------------------------------------------------------===//

#include "serve/Scheduler.h"
#include "support/ArgParse.h"
#include "support/Statistics.h"
#include "support/Timer.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sys/stat.h>
#include <vector>

using namespace hichi;
using namespace hichi::serve;

namespace {

/// Manifest facts of a previous run over the same StateDir.
struct ManifestEntry {
  std::string State;
  std::uint64_t Hash = 0;
};

bool loadManifest(const std::string &StateDir,
                  std::map<std::string, ManifestEntry> &Out,
                  std::string *Error) {
  json::Value Doc;
  if (!json::parseFile(Scheduler::manifestPath(StateDir), Doc, Error))
    return false;
  const json::Value *Jobs = Doc.find("jobs");
  if (!Jobs || !Jobs->isArray()) {
    if (Error)
      *Error = "manifest has no \"jobs\" array";
    return false;
  }
  for (const json::Value &Entry : Jobs->Items) {
    ManifestEntry M;
    M.State = Entry.stringOr("state", "pending");
    M.Hash = std::strtoull(Entry.stringOr("hash", "0").c_str(), nullptr, 16);
    Out[Entry.stringOr("name", "")] = M;
  }
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  ArgParser Args("hichi_serve: multi-tenant simulation job runner — many "
                 "PIC jobs over one shared backend pool with cross-job "
                 "batching, scheduling quanta and checkpointed "
                 "suspend/resume");
  Args.addOption("jobs", "JSON job-spec file (see docs/ARCHITECTURE.md)", "");
  Args.addOption("synthetic",
                 "generate this many synthetic mixed-size jobs instead of "
                 "reading --jobs",
                 "24");
  Args.addOption("tenants", "tenants of the synthetic mix", "2");
  Args.addOption("workers", "scheduler worker threads", "2");
  Args.addOption("pool-lanes", "total lanes of the shared backend pool", "8");
  Args.addOption("lanes-per-job", "lanes leased to each running job", "2");
  Args.addOption("batch", "max jobs fused into one batch", "2");
  Args.addOption("quantum",
                 "steps per scheduling quantum (0 = run each job to "
                 "completion)",
                 "0");
  Args.addOption("checkpoint-every",
                 "also checkpoint running jobs every N steps (0 = only at "
                 "quantum boundaries)",
                 "0");
  Args.addOption("state-dir",
                 "directory for checkpoints and the manifest (required for "
                 "suspend/resume; \"\" = stateless)",
                 "");
  Args.addOption("exit-after-quanta",
                 "stop the scheduler after N batch-quanta (crash injection "
                 "for recovery testing; -1 = off). Exits with code 3 when "
                 "work remains",
                 "-1");
  Args.addOption("verify-sample",
                 "verify every k-th completed job against a standalone "
                 "serial rerun (0 = none)",
                 "0");
  Args.addFlag("verify", "verify EVERY completed job against a standalone "
                         "serial rerun (bit-identical hashes required)");
  Args.addFlag("resume", "resume a previous run from --state-dir: completed "
                         "jobs keep their manifest hashes, interrupted jobs "
                         "restore from their checkpoints");
  Args.addFlag("quiet", "suppress streamed [done]/[quantum]/[diag] lines");
  if (!Args.parse(Argc, Argv)) {
    std::fprintf(stderr, "error: %s\n", Args.error().c_str());
    return 1;
  }
  if (Args.helpRequested()) {
    Args.printHelp(Argv[0]);
    return 0;
  }

  // --- the job stream ---
  std::vector<JobSpec> Specs;
  const std::string JobsFile = Args.getString("jobs");
  std::string Error;
  if (!JobsFile.empty()) {
    if (!loadJobSpecs(JobsFile, Specs, &Error)) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
  } else {
    Specs = syntheticJobMix(int(Args.getInt("synthetic").value_or(24)),
                            int(Args.getInt("tenants").value_or(2)));
  }
  if (Specs.empty()) {
    std::fprintf(stderr, "error: no jobs to run\n");
    return 1;
  }

  ServeConfig Config;
  Config.Workers = int(Args.getInt("workers").value_or(2));
  Config.BatchMax = int(Args.getInt("batch").value_or(2));
  Config.QuantumSteps = int(Args.getInt("quantum").value_or(0));
  Config.CheckpointEvery = int(Args.getInt("checkpoint-every").value_or(0));
  Config.StateDir = Args.getString("state-dir");
  Config.MaxQuanta = Args.getInt("exit-after-quanta").value_or(-1);
  Config.Verbose = !Args.getFlag("quiet");
  if (!Config.StateDir.empty())
    ::mkdir(Config.StateDir.c_str(), 0777); // EEXIST is fine

  // --- resume bookkeeping ---
  // The spec stream must be regenerated with the same arguments as the
  // interrupted run; the manifest tells us which jobs already finished
  // (hash kept, not re-run) and the checkpoint files carry the rest.
  std::map<std::string, ManifestEntry> Manifest;
  if (Args.getFlag("resume")) {
    if (Config.StateDir.empty()) {
      std::fprintf(stderr, "error: --resume needs --state-dir\n");
      return 1;
    }
    if (!loadManifest(Config.StateDir, Manifest, &Error)) {
      std::fprintf(stderr, "error: --resume: %s\n", Error.c_str());
      return 1;
    }
  }

  BackendPool Pool(int(Args.getInt("pool-lanes").value_or(8)),
                   int(Args.getInt("lanes-per-job").value_or(2)));
  Scheduler Sched(Pool, Config);

  std::map<std::string, const JobSpec *> SpecsByName;
  int ResumedComplete = 0;
  for (const JobSpec &Spec : Specs) {
    SpecsByName[Spec.Name] = &Spec;
    auto It = Manifest.find(Spec.Name);
    if (It != Manifest.end() && It->second.State == "completed") {
      Sched.noteCompleted(Spec, It->second.Hash);
      ++ResumedComplete;
    } else {
      Sched.enqueue(Spec);
    }
  }

  std::printf("hichi_serve: %zu jobs (%d already complete), pool of %d "
              "lanes (%d slots x %d lanes), %d workers, batch %d, "
              "quantum %s\n\n",
              Specs.size(), ResumedComplete, Pool.laneCount(),
              Pool.slotCount(), Pool.lanesPerJob(), Config.Workers,
              Config.BatchMax,
              Config.QuantumSteps > 0
                  ? (std::to_string(Config.QuantumSteps) + " steps").c_str()
                  : "off");

  Stopwatch Wall;
  const bool AllDone = Sched.run();
  const double WallNs = double(Wall.elapsedNanoseconds());

  // --- summary ---
  const std::vector<JobResult> Results = Sched.results();
  int Completed = 0, Cancelled = 0, Failed = 0;
  std::map<std::string, int> PerTenant;
  std::vector<double> Latencies;
  for (const JobResult &R : Results) {
    if (R.State == JobState::Completed) {
      ++Completed;
      ++PerTenant[R.Tenant];
      if (R.LatencyNs > 0) // resumed-complete jobs carry no latency
        Latencies.push_back(R.LatencyNs);
    } else if (R.State == JobState::Cancelled) {
      ++Cancelled;
    } else if (R.State == JobState::Failed) {
      ++Failed;
    }
  }
  const int FreshCompleted = Completed - ResumedComplete;
  std::printf("\n%d/%zu jobs completed (%d cancelled, %d failed), "
              "%lld quanta, %lld fused rounds, %.2f s wall\n",
              Completed, Specs.size(), Cancelled, Failed,
              Sched.quantaExecuted(), Sched.fusedRounds(), WallNs / 1e9);
  for (const auto &Tenant : PerTenant)
    std::printf("  tenant %-12s %d jobs\n", Tenant.first.c_str(),
                Tenant.second);
  std::sort(Latencies.begin(), Latencies.end());
  if (FreshCompleted > 0)
    std::printf("throughput: %.2f jobs/s; latency p50 %.1f ms, p95 %.1f ms\n",
                double(FreshCompleted) / (WallNs / 1e9),
                percentile(Latencies, 0.50) / 1e6,
                percentile(Latencies, 0.95) / 1e6);
  const std::vector<exec::ShardStat> Lanes = Pool.backend().shardStats();
  long long PoolLaunches = 0;
  double PoolBusyNs = 0;
  for (const exec::ShardStat &S : Lanes) {
    PoolLaunches += S.Launches;
    PoolBusyNs += S.BusyNs;
  }
  std::printf("pool: %zu lanes, %lld lane tasks, %.2f ms busy, busy "
              "imbalance %.2fx\n",
              Lanes.size(), PoolLaunches, PoolBusyNs / 1e6,
              exec::shardImbalance(Lanes));

  // --- verification against standalone serial reruns ---
  const bool VerifyAll = Args.getFlag("verify");
  const int SampleEvery = int(Args.getInt("verify-sample").value_or(0));
  if (VerifyAll || SampleEvery > 0) {
    int Checked = 0, Mismatches = 0, Nth = 0;
    for (const JobResult &R : Results) {
      if (R.State != JobState::Completed)
        continue;
      ++Nth;
      if (!VerifyAll && (Nth - 1) % SampleEvery != 0)
        continue;
      const JobSpec *Spec = SpecsByName.count(R.Name)
                                ? SpecsByName[R.Name]
                                : nullptr;
      if (!Spec)
        continue;
      const std::uint64_t Reference = runStandalone(*Spec);
      ++Checked;
      if (Reference != R.Hash) {
        ++Mismatches;
        std::fprintf(stderr,
                     "MISMATCH job=%s served=%016llx standalone=%016llx\n",
                     R.Name.c_str(), (unsigned long long)R.Hash,
                     (unsigned long long)Reference);
      }
    }
    std::printf("verification: %d/%d sampled jobs bit-identical to "
                "standalone serial runs\n",
                Checked - Mismatches, Checked);
    if (Mismatches > 0)
      return 1;
  }

  if (!AllDone) {
    std::printf("stopped early with resumable work remaining (rerun with "
                "--resume --state-dir %s)\n",
                Config.StateDir.c_str());
    return 3;
  }
  return Failed > 0 ? 1 : 0;
}
