#!/usr/bin/env python3
"""Unit tests for tools/bench_trend.py.

Exercises the degenerate tolerance cases the CI gate can hit on small
artifact sets — above all the n=1 case: a (bench, backend, stage) triple
with a single matched configuration, where the run-wide MAD is 0 and the
median drift would eat the entire regression signal. bench_trend must
fall back to the threshold-only gate there and say so explicitly.

Run directly (python3 tools/bench_trend_test.py) or via the
`bench_trend_unit` ctest target.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

TREND = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                     "bench_trend.py")


def make_record(backend, nsps, bench="bench_x", stage="push"):
    """One hichi-bench-v1 record; min_ns = 0 so best_nsps uses nsps."""
    return {"bench": bench, "backend": backend, "stage": stage,
            "scenario": "s", "layout": "aos", "precision": "double",
            "particles": 100, "steps": 10, "iterations": 2, "fuse_steps": 1,
            "threads": 0, "submit": "mega-kernel", "median_ns": 0.0,
            "min_ns": 0.0, "max_ns": 0.0, "nsps": nsps}


def write_artifact(directory, records, name="BENCH_x.json"):
    os.makedirs(directory, exist_ok=True)
    with open(os.path.join(directory, name), "w") as handle:
        json.dump({"schema": "hichi-bench-v1", "bench": "bench_x",
                   "results": records}, handle)


def run_trend(results, baseline, *extra):
    process = subprocess.run(
        [sys.executable, TREND, "--results", results, "--baseline", baseline,
         "--threshold", "0.15", *extra],
        capture_output=True, text=True)
    return process.returncode, process.stdout + process.stderr


class SingleConfigurationTest(unittest.TestCase):
    """The n=1 degenerate case: threshold-only gate, explicit note."""

    def run_single(self, old_nsps, new_nsps):
        with tempfile.TemporaryDirectory() as tmp:
            results = os.path.join(tmp, "results")
            baseline = os.path.join(tmp, "baseline")
            write_artifact(baseline, [make_record("serial", old_nsps)])
            write_artifact(results, [make_record("serial", new_nsps)])
            return run_trend(results, baseline)

    def test_regression_fails_threshold_only(self):
        # 2x slower on the only configuration: the old behaviour let the
        # median drift normalize this to exactly 1.0 and pass; the
        # threshold-only fallback must fail it.
        code, output = self.run_single(100.0, 200.0)
        self.assertEqual(code, 1, output)
        self.assertIn("n=1", output)
        self.assertIn("no spread estimate", output)
        self.assertIn("threshold-only gate", output)

    def test_within_threshold_passes_with_note(self):
        code, output = self.run_single(100.0, 110.0)
        self.assertEqual(code, 0, output)
        self.assertIn("no spread estimate", output)

    def test_flagged_triple_reports_n1_note(self):
        # Three configurations so the sigma path stays active (MAD = 0
        # because two residuals vanish): the regressing triple has a
        # single configuration and its report line must carry the note.
        with tempfile.TemporaryDirectory() as tmp:
            results = os.path.join(tmp, "results")
            baseline = os.path.join(tmp, "baseline")
            write_artifact(baseline, [make_record("serial", 100.0),
                                      make_record("openmp", 50.0),
                                      make_record("dpcpp", 80.0)])
            write_artifact(results, [make_record("serial", 100.0),
                                     make_record("openmp", 50.0),
                                     make_record("dpcpp", 160.0)])
            code, output = run_trend(results, baseline)
        self.assertEqual(code, 1, output)
        self.assertIn("(n=1, no spread estimate)", output)


class MultiConfigurationTest(unittest.TestCase):
    """n >= 2 keeps the drift/tolerance layers exactly as before."""

    def test_uniform_slowdown_is_absorbed_as_drift_with_warning(self):
        # Every configuration 2x slower reads as host drift (the
        # documented blind spot) — still passes, but loudly.
        with tempfile.TemporaryDirectory() as tmp:
            results = os.path.join(tmp, "results")
            baseline = os.path.join(tmp, "baseline")
            write_artifact(baseline, [make_record("serial", 100.0),
                                      make_record("openmp", 60.0)])
            write_artifact(results, [make_record("serial", 200.0),
                                     make_record("openmp", 120.0)])
            code, output = run_trend(results, baseline)
        self.assertEqual(code, 0, output)
        self.assertIn("WARNING", output)

    def test_no_baseline_is_clean_pass(self):
        with tempfile.TemporaryDirectory() as tmp:
            results = os.path.join(tmp, "results")
            write_artifact(results, [make_record("serial", 100.0)])
            code, output = run_trend(results, os.path.join(tmp, "missing"))
        self.assertEqual(code, 0, output)
        self.assertIn("no baseline", output)


if __name__ == "__main__":
    unittest.main()
