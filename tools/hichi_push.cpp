//===-- tools/hichi_push.cpp - The pusher benchmark as a CLI -------------===//
//
// Part of the hichi-boris-dpcpp-repro project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line driver for the paper's benchmark: pick scenario, layout,
/// execution backend, precision, pusher, device and sizes; get NSPS. This
/// is the "run one cell of Table 2/3 yourself" tool:
///
/// \code
///   hichi_push --scenario analytical --layout soa --runner dpcpp-numa
///       --precision float --particles 1000000 --steps 100
///   hichi_push --device xemax --layout aos     # Table 3 flavour
///   hichi_push --list-runners                  # what can --runner be?
///   hichi_push --runner dpcpp --fuse 8 --json results/push.json
/// \endcode
///
/// Backends are resolved by name from the exec registry, so newly
/// registered strategies appear in --runner / --list-runners without
/// touching this file. The printed state hash is identical across
/// backends and fuse factors for a given configuration (the Section 4
/// equivalence claim) — compare two runs with `--runner` swapped.
///
//===----------------------------------------------------------------------===//

#include "core/Core.h"
#include "core/RadiationReaction.h"
#include "fields/DipoleWave.h"
#include "fields/PrecalculatedFields.h"
#include "perfmodel/WorkloadModel.h"
#include "support/ArgParse.h"
#include "support/BenchReport.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

using namespace hichi;

namespace {

struct Config {
  bool Analytical = false;
  bool SoA = false;
  bool SinglePrecision = true;
  std::string Runner = "dpcpp";
  std::string Device = "cpu";
  std::string Pusher = "boris";
  std::string JsonPath;
  Index Particles = 1'000'000;
  int Steps = 50;
  int Iterations = 3;
  int FuseSteps = 1;
  int Threads = 0;
  Index Grain = 0;
  bool Chain = false; ///< event-chained submission instead of mega-kernels
  bool Graph = false; ///< capture the first step, replay the rest
};

/// FNV-1a over the final particle states (positions, momenta, gamma), so
/// two runs can be compared for bitwise equality from the console.
template <typename Array> std::uint64_t stateHash(Array &Particles) {
  using Real = typename Array::Scalar;
  std::uint64_t Hash = 1469598103934665603ULL;
  auto Mix = [&Hash](Real V) {
    unsigned char Bytes[sizeof(Real)];
    std::memcpy(Bytes, &V, sizeof(Real));
    for (unsigned char B : Bytes) {
      Hash ^= B;
      Hash *= 1099511628211ULL;
    }
  };
  for (Index I = 0, E = Particles.view().size(); I < E; ++I) {
    auto P = Particles[I].load();
    for (Real V : {P.Position.X, P.Position.Y, P.Position.Z, P.Momentum.X,
                   P.Momentum.Y, P.Momentum.Z, P.Gamma})
      Mix(V);
  }
  return Hash;
}

template <typename Real, typename Array, typename Pusher>
int runBenchmark(const Config &Cfg) {
  Array Particles(Cfg.Particles);
  const Real Radius = Real(dipole_benchmark::SeedRadiusFactor *
                           dipole_benchmark::Wavelength);
  initializeBallAtRest(Particles, Cfg.Particles, Vector3<Real>::zero(),
                       Radius, PS_Electron);
  auto Types = ParticleTypeTable<Real>::cgs();
  auto Wave = DipoleWaveSource<Real>::paperBenchmark();
  const Real Dt = Real(dipole_benchmark::TimeStepFraction * 2.0 *
                       constants::Pi / dipole_benchmark::WaveFrequency);

  minisycl::device Dev = Cfg.Device == "p630"
                             ? minisycl::gpu_device_p630()
                         : Cfg.Device == "xemax"
                             ? minisycl::gpu_device_iris_xe_max()
                             : minisycl::cpu_device();
  minisycl::queue Queue{Dev};

  exec::BackendConfig BackendCfg;
  BackendCfg.Threads = Cfg.Threads;
  BackendCfg.Grain = Cfg.Grain;
  auto Backend = exec::createBackend(Cfg.Runner, BackendCfg);
  if (!Backend) {
    std::fprintf(stderr, "error: unknown runner '%s' (known: %s)\n",
                 Cfg.Runner.c_str(), exec::listBackendNames(", ").c_str());
    return 1;
  }
  auto Profile = perfmodel::gpuKernelProfile(
      Cfg.Analytical ? perfmodel::Scenario::AnalyticalFields
                     : perfmodel::Scenario::PrecalculatedFields,
      Cfg.SoA ? perfmodel::Layout::SoA : perfmodel::Layout::AoS,
      Cfg.SinglePrecision ? perfmodel::Precision::Single
                          : perfmodel::Precision::Double);
  exec::ExecutionContext Ctx;
  Ctx.Queue = &Queue;
  if (Dev.is_gpu())
    Ctx.GpuWorkload = &Profile;

  PrecalculatedFields<Real> Stored(Cfg.Particles);
  if (!Cfg.Analytical)
    Stored.precompute(Particles, Wave, Real(0));

  exec::StepLoopOptions<Real> Opts;
  Opts.FuseSteps = Cfg.FuseSteps;
  if (Cfg.Graph)
    Opts.Fusion = exec::FusionMode::Graph;
  else if (Cfg.Chain)
    Opts.Fusion = exec::FusionMode::EventChain;
  auto RunOnce = [&]() -> RunStats {
    if (Cfg.Analytical)
      return exec::runStepLoop<Pusher>(*Backend, Ctx, Particles, Wave, Types,
                                       Dt, Cfg.Steps, Opts);
    return exec::runStepLoop<Pusher>(*Backend, Ctx, Particles,
                                     Stored.source(), Types, Dt, Cfg.Steps,
                                     Opts);
  };

  RunOnce(); // warmup (JIT + first touch)
  bench::MeasuredSeries Series;
  double TotalNs = 0;
  for (int It = 0; It < Cfg.Iterations; ++It) {
    RunStats Stats = RunOnce();
    double IterNs = Dev.is_gpu() ? Stats.ModeledNs : Stats.HostNs;
    Series.IterationNs.push_back(IterNs);
    TotalNs += IterNs;
    std::printf("iteration %d: %.2f ms\n", It, IterNs / 1e6);
  }
  Series.Nsps = nsPerParticlePerStep(TotalNs, Cfg.Iterations,
                                     double(Cfg.Particles),
                                     double(Cfg.Steps));
  std::printf("\nNSPS = %.3f ns/particle/step on '%s'%s\n", Series.Nsps,
              Dev.name().c_str(),
              Dev.is_gpu() ? " (device-modeled)" : " (measured)");
  std::printf("final state hash = %016llx (backend-independent)\n",
              (unsigned long long)stateHash(Particles));

  if (!Cfg.JsonPath.empty()) {
    // What actually ran: --graph wins, --chain forces the chained
    // shape, and FusionMode::Auto picks chaining on asynchronous
    // backends too.
    const bool Chained =
        !Cfg.Graph && (Cfg.Chain || Backend->isAsynchronous());
    bench::JsonReport Report("hichi_push");
    bench::BenchRecord R;
    R.Backend = Cfg.Runner;
    R.Stage = "push"; // the standalone pusher is the PIC loop's stage 1+2
    R.Scenario = Cfg.Analytical ? "analytical" : "precalculated";
    R.Layout = Cfg.SoA ? "soa" : "aos";
    R.Precision = Cfg.SinglePrecision ? "float" : "double";
    R.Particles = (long long)Cfg.Particles;
    R.Steps = Cfg.Steps;
    R.Iterations = Cfg.Iterations;
    // The chained shape submits single steps — record fuse as what
    // actually ran, and the submission mode as its own dimension, so
    // chained and mega-kernel runs never collide in trend comparisons.
    R.FuseSteps = Chained || Cfg.Graph ? 1 : Cfg.FuseSteps;
    R.Submit = Cfg.Graph ? "graph" : Chained ? "event-chain" : "mega-kernel";
    R.Threads = Cfg.Threads;
    R.setSeries(Series);
    Report.add(R);
    if (Report.writeFile(Cfg.JsonPath))
      std::printf("wrote JSON record to %s\n", Cfg.JsonPath.c_str());
    else {
      std::fprintf(stderr, "error: could not write %s\n",
                   Cfg.JsonPath.c_str());
      return 1;
    }
  }
  return 0;
}

template <typename Real, typename Array> int dispatchPusher(const Config &C) {
  if (C.Pusher == "vay")
    return runBenchmark<Real, Array, VayPusher>(C);
  if (C.Pusher == "higuera-cary")
    return runBenchmark<Real, Array, HigueraCaryPusher>(C);
  if (C.Pusher == "boris-rr")
    return runBenchmark<Real, Array, RadiationReactionPusher<BorisPusher>>(C);
  return runBenchmark<Real, Array, BorisPusher>(C);
}

template <typename Real> int dispatchLayout(const Config &C) {
  if (C.SoA)
    return dispatchPusher<Real, ParticleArraySoA<Real>>(C);
  return dispatchPusher<Real, ParticleArrayAoS<Real>>(C);
}

} // namespace

int main(int Argc, char **Argv) {
  ArgParser Args("hichi_push: run one configuration of the paper's Boris "
                 "pusher benchmark and report NSPS");
  Args.addOption("scenario", "precalculated | analytical", "precalculated");
  Args.addOption("layout", "aos | soa", "aos");
  Args.addOption("runner",
                 "execution backend (see --list-runners)", "dpcpp");
  Args.addOption("precision", "float | double", "float");
  Args.addOption("pusher", "boris | vay | higuera-cary | boris-rr", "boris");
  Args.addOption("device", "cpu | p630 | xemax", "cpu");
  Args.addOption("particles", "ensemble size", "1000000");
  Args.addOption("steps", "steps per iteration", "50");
  Args.addOption("iterations", "measured iterations", "3");
  Args.addOption("fuse", "time steps per kernel (multi-step fusion)", "1");
  Args.addOption("threads", "worker threads (0 = all)", "0");
  Args.addOption("grain", "dynamic chunk size (0 = auto)", "0");
  Args.addOption("json", "write a machine-readable record to this path", "");
  Args.addFlag("chain", "submit steps as an event chain (non-blocking "
                        "submit + one wait) instead of fused mega-kernels");
  Args.addFlag("graph", "capture the first step's launch as a step graph "
                        "and replay it for the remaining steps");
  Args.addFlag("list-runners", "list registered execution backends and exit");

  if (!Args.parse(Argc, Argv)) {
    std::fprintf(stderr, "error: %s\n", Args.error().c_str());
    return 1;
  }
  if (Args.helpRequested()) {
    Args.printHelp(Argv[0]);
    return 0;
  }
  if (Args.getFlag("list-runners")) {
    auto &Registry = exec::BackendRegistry::instance();
    std::printf("registered execution backends:\n");
    for (const std::string &Name : Registry.names())
      std::printf("  %-12s %s\n", Name.c_str(),
                  Registry.description(Name).c_str());
    return 0;
  }

  Config Cfg;
  Cfg.Analytical = Args.getString("scenario") == "analytical";
  Cfg.SoA = Args.getString("layout") == "soa";
  Cfg.SinglePrecision = Args.getString("precision") != "double";
  Cfg.Pusher = Args.getString("pusher");
  Cfg.Device = Args.getString("device");
  Cfg.Runner = Args.getString("runner");
  Cfg.JsonPath = Args.getString("json");
  Cfg.Particles = Index(Args.getInt("particles").value_or(1'000'000));
  Cfg.Steps = std::max(1, int(Args.getInt("steps").value_or(50)));
  Cfg.Iterations = std::max(1, int(Args.getInt("iterations").value_or(3)));
  Cfg.FuseSteps = int(Args.getInt("fuse").value_or(1));
  Cfg.Threads = int(Args.getInt("threads").value_or(0));
  Cfg.Grain = Index(Args.getInt("grain").value_or(0));
  Cfg.Chain = Args.getFlag("chain");
  Cfg.Graph = Args.getFlag("graph");

  std::printf("scenario=%s layout=%s runner=%s precision=%s pusher=%s "
              "device=%s N=%lld steps=%d fuse=%d submit=%s\n\n",
              Args.getString("scenario").c_str(),
              Args.getString("layout").c_str(), Cfg.Runner.c_str(),
              Args.getString("precision").c_str(), Cfg.Pusher.c_str(),
              Cfg.Device.c_str(), (long long)Cfg.Particles, Cfg.Steps,
              Cfg.FuseSteps,
              Cfg.Graph ? "graph" : Cfg.Chain ? "event-chain" : "auto");

  if (Cfg.SinglePrecision)
    return dispatchLayout<float>(Cfg);
  return dispatchLayout<double>(Cfg);
}
