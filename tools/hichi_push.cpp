//===-- tools/hichi_push.cpp - The pusher benchmark as a CLI -------------===//
//
// Part of the hichi-boris-dpcpp-repro project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line driver for the paper's benchmark: pick scenario, layout,
/// parallelization, precision, pusher, device and sizes; get NSPS. This
/// is the "run one cell of Table 2/3 yourself" tool:
///
/// \code
///   hichi_push --scenario analytical --layout soa --runner dpcpp-numa
///       --precision float --particles 1000000 --steps 100
///   hichi_push --device xemax --layout aos     # Table 3 flavour
/// \endcode
///
//===----------------------------------------------------------------------===//

#include "core/Core.h"
#include "core/RadiationReaction.h"
#include "fields/DipoleWave.h"
#include "fields/PrecalculatedFields.h"
#include "perfmodel/WorkloadModel.h"
#include "support/ArgParse.h"

#include <cstdio>
#include <string>

using namespace hichi;

namespace {

struct Config {
  bool Analytical = false;
  bool SoA = false;
  bool SinglePrecision = true;
  RunnerKind Kind = RunnerKind::Dpcpp;
  std::string Device = "cpu";
  std::string Pusher = "boris";
  Index Particles = 1'000'000;
  int Steps = 50;
  int Iterations = 3;
};

template <typename Real, typename Array, typename Pusher>
int runBenchmark(const Config &Cfg) {
  Array Particles(Cfg.Particles);
  const Real Radius = Real(dipole_benchmark::SeedRadiusFactor *
                           dipole_benchmark::Wavelength);
  initializeBallAtRest(Particles, Cfg.Particles, Vector3<Real>::zero(),
                       Radius, PS_Electron);
  auto Types = ParticleTypeTable<Real>::cgs();
  auto Wave = DipoleWaveSource<Real>::paperBenchmark();
  const Real Dt = Real(dipole_benchmark::TimeStepFraction * 2.0 *
                       constants::Pi / dipole_benchmark::WaveFrequency);

  minisycl::device Dev = Cfg.Device == "p630"
                             ? minisycl::gpu_device_p630()
                         : Cfg.Device == "xemax"
                             ? minisycl::gpu_device_iris_xe_max()
                             : minisycl::cpu_device();
  minisycl::queue Queue{Dev};

  RunnerOptions<Real> Opts;
  Opts.Kind = Cfg.Kind;
  auto Profile = perfmodel::gpuKernelProfile(
      Cfg.Analytical ? perfmodel::Scenario::AnalyticalFields
                     : perfmodel::Scenario::PrecalculatedFields,
      Cfg.SoA ? perfmodel::Layout::SoA : perfmodel::Layout::AoS,
      Cfg.SinglePrecision ? perfmodel::Precision::Single
                          : perfmodel::Precision::Double);
  if (Dev.is_gpu())
    Opts.GpuWorkload = &Profile;

  PrecalculatedFields<Real> Stored(Cfg.Particles);
  if (!Cfg.Analytical)
    Stored.precompute(Particles, Wave, Real(0));

  auto RunOnce = [&]() -> RunStats {
    if (Cfg.Analytical)
      return runSimulation<Pusher>(Particles, Wave, Types, Dt, Cfg.Steps,
                                   Opts, &Queue);
    return runSimulation<Pusher>(Particles, Stored.source(), Types, Dt,
                                 Cfg.Steps, Opts, &Queue);
  };

  RunOnce(); // warmup (JIT + first touch)
  double TotalNs = 0;
  for (int It = 0; It < Cfg.Iterations; ++It) {
    RunStats Stats = RunOnce();
    double IterNs = Dev.is_gpu() ? Stats.ModeledNs : Stats.HostNs;
    TotalNs += IterNs;
    std::printf("iteration %d: %.2f ms\n", It, IterNs / 1e6);
  }
  double Nsps = nsPerParticlePerStep(TotalNs, Cfg.Iterations,
                                     double(Cfg.Particles),
                                     double(Cfg.Steps));
  std::printf("\nNSPS = %.3f ns/particle/step on '%s'%s\n", Nsps,
              Dev.name().c_str(),
              Dev.is_gpu() ? " (device-modeled)" : " (measured)");
  return 0;
}

template <typename Real, typename Array> int dispatchPusher(const Config &C) {
  if (C.Pusher == "vay")
    return runBenchmark<Real, Array, VayPusher>(C);
  if (C.Pusher == "higuera-cary")
    return runBenchmark<Real, Array, HigueraCaryPusher>(C);
  if (C.Pusher == "boris-rr")
    return runBenchmark<Real, Array, RadiationReactionPusher<BorisPusher>>(C);
  return runBenchmark<Real, Array, BorisPusher>(C);
}

template <typename Real> int dispatchLayout(const Config &C) {
  if (C.SoA)
    return dispatchPusher<Real, ParticleArraySoA<Real>>(C);
  return dispatchPusher<Real, ParticleArrayAoS<Real>>(C);
}

} // namespace

int main(int Argc, char **Argv) {
  ArgParser Args("hichi_push: run one configuration of the paper's Boris "
                 "pusher benchmark and report NSPS");
  Args.addOption("scenario", "precalculated | analytical", "precalculated");
  Args.addOption("layout", "aos | soa", "aos");
  Args.addOption("runner", "serial | openmp | dpcpp | dpcpp-numa", "dpcpp");
  Args.addOption("precision", "float | double", "float");
  Args.addOption("pusher", "boris | vay | higuera-cary | boris-rr", "boris");
  Args.addOption("device", "cpu | p630 | xemax", "cpu");
  Args.addOption("particles", "ensemble size", "1000000");
  Args.addOption("steps", "steps per iteration", "50");
  Args.addOption("iterations", "measured iterations", "3");

  if (!Args.parse(Argc, Argv)) {
    std::fprintf(stderr, "error: %s\n", Args.error().c_str());
    return 1;
  }
  if (Args.helpRequested()) {
    Args.printHelp(Argv[0]);
    return 0;
  }

  Config Cfg;
  Cfg.Analytical = Args.getString("scenario") == "analytical";
  Cfg.SoA = Args.getString("layout") == "soa";
  Cfg.SinglePrecision = Args.getString("precision") != "double";
  Cfg.Pusher = Args.getString("pusher");
  Cfg.Device = Args.getString("device");
  std::string Runner = Args.getString("runner");
  Cfg.Kind = Runner == "serial"       ? RunnerKind::Serial
             : Runner == "openmp"     ? RunnerKind::OpenMpStyle
             : Runner == "dpcpp-numa" ? RunnerKind::DpcppNuma
                                      : RunnerKind::Dpcpp;
  Cfg.Particles = Index(Args.getInt("particles").value_or(1'000'000));
  Cfg.Steps = int(Args.getInt("steps").value_or(50));
  Cfg.Iterations = int(Args.getInt("iterations").value_or(3));

  std::printf("scenario=%s layout=%s runner=%s precision=%s pusher=%s "
              "device=%s N=%lld steps=%d\n\n",
              Args.getString("scenario").c_str(),
              Args.getString("layout").c_str(), Runner.c_str(),
              Args.getString("precision").c_str(), Cfg.Pusher.c_str(),
              Cfg.Device.c_str(), (long long)Cfg.Particles, Cfg.Steps);

  if (Cfg.SinglePrecision)
    return dispatchLayout<float>(Cfg);
  return dispatchLayout<double>(Cfg);
}
